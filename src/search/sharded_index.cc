#include "search/sharded_index.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/trace.h"
#include "search/snapshot.h"
#include "util/parallel.h"

namespace sapla {
namespace {

// splitmix64 finalizer: folds per-shard corpus ids into one order-sensitive
// fleet id.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

using SteadyClock = std::chrono::steady_clock;

uint64_t ElapsedUs(SteadyClock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - since)
          .count());
}

}  // namespace

ShardedIndex::ShardedIndex(Method method, size_t m, IndexKind kind)
    : ShardedIndex(method, m, kind, Options()) {}

ShardedIndex::ShardedIndex(Method method, size_t m, IndexKind kind,
                           const Options& options)
    : method_(method), m_(m), kind_(kind), options_(options) {
  // The merge contract demands per-shard answers that do not depend on the
  // partition, which DBCH's default §5.3 node distance cannot give (it is
  // knowingly approximate, index/dbch_tree.h). Force the sound regime on
  // every shard regardless of what the caller passed.
  options_.index.dbch_sound_bounds = true;
}

ShardedIndex::~ShardedIndex() = default;

std::string ShardedIndex::ShardSnapshotPath(const std::string& prefix,
                                            size_t shard) {
  return prefix + ".shard" + std::to_string(shard) + ".snp";
}

Status ShardedIndex::InitShards(const Dataset& dataset,
                                const std::string& snapshot_prefix,
                                const SnapshotLoadOptions& load_options) {
  if (options_.index.legacy_aos_corpus)
    return Status::InvalidArgument(
        "sharded index requires the columnar corpus layout");
  if (dataset.size() == 0) return Status::InvalidArgument("empty dataset");
  const size_t n = dataset.size();
  const size_t count =
      std::min(std::max<size_t>(1, options_.num_shards), n);

  // Build into a side vector so a failed shard leaves the index serving
  // whatever it served before.
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    const auto [lo, hi] = ParallelChunk(0, n, count, s);
    auto gen = std::make_shared<Generation>();
    gen->dataset.name = dataset.name;
    gen->dataset.series.assign(dataset.series.begin() + lo,
                               dataset.series.begin() + hi);
    gen->index =
        std::make_unique<SimilarityIndex>(method_, m_, kind_, options_.index);
    const Status st =
        snapshot_prefix.empty()
            ? gen->index->Build(gen->dataset)
            : LoadIndexSnapshot(ShardSnapshotPath(snapshot_prefix, s),
                                gen->dataset, gen->index.get(), load_options);
    if (!st.ok()) return st;
    auto shard = std::make_unique<Shard>();
    shard->gen = std::move(gen);
    shard->lo = lo;
    shard->hi = hi;
    shards.push_back(std::move(shard));
  }
  shards_ = std::move(shards);
  total_size_ = n;
  series_length_ = dataset.length();
  return Status::OK();
}

Status ShardedIndex::Build(const Dataset& dataset) {
  SAPLA_TRACE_SPAN("shard/build");
  return InitShards(dataset, "", SnapshotLoadOptions{});
}

Status ShardedIndex::Restore(const Dataset& dataset, const std::string& prefix,
                             const SnapshotLoadOptions& load_options) {
  SAPLA_TRACE_SPAN("shard/restore");
  if (prefix.empty())
    return Status::InvalidArgument("empty snapshot prefix");
  return InitShards(dataset, prefix, load_options);
}

std::pair<size_t, size_t> ShardedIndex::ShardRange(size_t shard) const {
  if (shard >= shards_.size()) return {0, 0};
  return {shards_[shard]->lo, shards_[shard]->hi};
}

Status ShardedIndex::SaveSnapshots(
    const std::string& prefix, const SnapshotWriteOptions& write_options) const {
  SAPLA_TRACE_SPAN("shard/save_snapshots");
  if (shards_.empty())
    return Status::InvalidArgument("sharded index is not built");
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_ptr<const Generation> gen;
    {
      std::lock_guard<std::mutex> lock(shards_[s]->mu);
      gen = shards_[s]->gen;
    }
    const Status st = SaveIndexSnapshot(ShardSnapshotPath(prefix, s),
                                        *gen->index, write_options);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

void ShardedIndex::Publish(size_t shard,
                           std::shared_ptr<const Generation> gen) {
  Shard& sh = *shards_[shard];
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.gen = std::move(gen);
  }
  sh.health.store(static_cast<int>(ShardHealth::kHealthy));
}

Status ShardedIndex::RebuildShard(size_t shard) {
  SAPLA_TRACE_SPAN("shard/rebuild");
  if (shard >= shards_.size())
    return Status::InvalidArgument("shard out of range");
  std::shared_ptr<const Generation> old;
  {
    std::lock_guard<std::mutex> lock(shards_[shard]->mu);
    old = shards_[shard]->gen;
  }
  auto gen = std::make_shared<Generation>();
  gen->dataset = old->dataset;
  gen->index =
      std::make_unique<SimilarityIndex>(method_, m_, kind_, options_.index);
  const Status st = gen->index->Build(gen->dataset);
  if (!st.ok()) return st;
  Publish(shard, std::move(gen));
  return Status::OK();
}

Status ShardedIndex::RestoreShard(size_t shard, const std::string& path,
                                  const SnapshotLoadOptions& load_options) {
  SAPLA_TRACE_SPAN("shard/restore_shard");
  if (shard >= shards_.size())
    return Status::InvalidArgument("shard out of range");
  std::shared_ptr<const Generation> old;
  {
    std::lock_guard<std::mutex> lock(shards_[shard]->mu);
    old = shards_[shard]->gen;
  }
  auto gen = std::make_shared<Generation>();
  gen->dataset = old->dataset;
  gen->index =
      std::make_unique<SimilarityIndex>(method_, m_, kind_, options_.index);
  const Status st =
      LoadIndexSnapshot(path, gen->dataset, gen->index.get(), load_options);
  if (!st.ok()) return st;
  Publish(shard, std::move(gen));
  return Status::OK();
}

void ShardedIndex::SetShardHealth(size_t shard, ShardHealth health) {
  if (shard >= shards_.size()) return;
  shards_[shard]->health.store(static_cast<int>(health));
}

ShardHealth ShardedIndex::shard_health(size_t shard) const {
  if (shard >= shards_.size()) return ShardHealth::kUnhealthy;
  return static_cast<ShardHealth>(shards_[shard]->health.load());
}

uint64_t ShardedIndex::shard_corpus_id(size_t shard) const {
  if (shard >= shards_.size()) return 0;
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->gen->index->corpus_id();
}

StoreFootprint ShardedIndex::footprint() const {
  StoreFootprint total;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_ptr<const Generation> gen;
    {
      std::lock_guard<std::mutex> lock(shards_[s]->mu);
      gen = shards_[s]->gen;
    }
    if (gen != nullptr && gen->index != nullptr)
      total += gen->index->footprint();
  }
  return total;
}

uint64_t ShardedIndex::corpus_id() const {
  if (shards_.empty()) return 0;
  if (shards_.size() == 1) return shard_corpus_id(0);
  uint64_t h = 0;
  for (size_t s = 0; s < shards_.size(); ++s)
    h = Mix64(h ^ shard_corpus_id(s));
  return h;
}

std::vector<ShardedIndex::Pinned> ShardedIndex::PinShards() const {
  std::vector<Pinned> pins(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      pins[s].gen = sh.gen;
    }
    pins[s].health = static_cast<ShardHealth>(sh.health.load());
    pins[s].lo = sh.lo;
  }
  return pins;
}

// Each query pins every shard's generation once, scatters (inline when
// already inside a batch worker — ParallelFor nests safely), remaps local
// ids to global by the shard's range start, sums the counters and sorts on
// (distance, id). The per-shard answer sets are exact over disjoint
// subsets, so the merge reproduces the single-index answer.
KnnResult ShardedIndex::Knn(const std::vector<double>& query,
                            size_t k) const {
  return KnnWithExplain(query, k, nullptr);
}

KnnResult ShardedIndex::KnnExplain(const std::vector<double>& query, size_t k,
                                   obs::QueryExplain* explain) const {
  return KnnWithExplain(query, k, explain);
}

KnnResult ShardedIndex::KnnWithExplain(const std::vector<double>& query,
                                       size_t k,
                                       obs::QueryExplain* explain) const {
  SAPLA_TRACE_SPAN("shard/knn");
  const auto t0 = SteadyClock::now();
  const std::vector<Pinned> pins = PinShards();
  std::vector<KnnResult> parts(pins.size());
  std::vector<uint64_t> part_us(explain == nullptr ? 0 : pins.size(), 0);
  bool approximate = false;
  for (const Pinned& p : pins)
    if (p.health != ShardHealth::kHealthy) approximate = true;
  uint64_t scatter_us = 0;
  {
    SAPLA_TRACE_SPAN("shard/scatter");
    const auto s0 = SteadyClock::now();
    ParallelFor(0, pins.size(), [&](size_t s) {
      SAPLA_TRACE_SPAN("shard/search");
      const Pinned& p = pins[s];
      if (p.health == ShardHealth::kUnhealthy) return;
      const auto w0 = SteadyClock::now();
      parts[s] = p.health == ShardHealth::kDegraded
                     ? p.gen->index->KnnLowerBound(query, k)
                     : p.gen->index->Knn(query, k);
      if (explain != nullptr) part_us[s] = ElapsedUs(w0);
    });
    scatter_us = ElapsedUs(s0);
  }
  KnnResult out;
  uint64_t merge_us = 0;
  {
    SAPLA_TRACE_SPAN("shard/merge");
    const auto m0 = SteadyClock::now();
    for (size_t s = 0; s < pins.size(); ++s) {
      for (const auto& [dist, id] : parts[s].neighbors)
        out.neighbors.emplace_back(dist, id + pins[s].lo);
      out.num_measured += parts[s].num_measured;
      out.counters.Add(parts[s].counters);
    }
    std::sort(out.neighbors.begin(), out.neighbors.end());
    if (out.neighbors.size() > k) out.neighbors.resize(k);
    merge_us = ElapsedUs(m0);
  }
  out.approximate = approximate;
  if (explain != nullptr) {
    explain->trace_id = obs::CurrentTraceContext().trace_id;
    explain->total_us = ElapsedUs(t0);
    explain->approximate = out.approximate;
    explain->counters = out.counters;
    explain->stages.push_back({"scatter", scatter_us});
    explain->stages.push_back({"merge", merge_us});
    for (size_t s = 0; s < pins.size(); ++s) {
      obs::ShardExplain part;
      part.part = "shard" + std::to_string(s);
      part.health = static_cast<int>(pins[s].health);
      part.dur_us = part_us[s];
      part.results = parts[s].neighbors.size();
      part.counters = parts[s].counters;
      explain->parts.push_back(std::move(part));
    }
  }
  return out;
}

KnnResult ShardedIndex::KnnLowerBound(const std::vector<double>& query,
                                      size_t k) const {
  SAPLA_TRACE_SPAN("shard/knn_lb");
  const std::vector<Pinned> pins = PinShards();
  std::vector<KnnResult> parts(pins.size());
  bool approximate = false;
  ParallelFor(0, pins.size(), [&](size_t s) {
    if (pins[s].health == ShardHealth::kUnhealthy) return;
    parts[s] = pins[s].gen->index->KnnLowerBound(query, k);
  });
  KnnResult out;
  for (size_t s = 0; s < pins.size(); ++s) {
    if (pins[s].health == ShardHealth::kUnhealthy) {
      approximate = true;
      continue;
    }
    for (const auto& [dist, id] : parts[s].neighbors)
      out.neighbors.emplace_back(dist, id + pins[s].lo);
    out.num_measured += parts[s].num_measured;
    out.counters.Add(parts[s].counters);
  }
  std::sort(out.neighbors.begin(), out.neighbors.end());
  if (out.neighbors.size() > k) out.neighbors.resize(k);
  out.approximate = approximate;
  return out;
}

KnnResult ShardedIndex::RangeSearch(const std::vector<double>& query,
                                    double radius) const {
  return RangeSearchWithExplain(query, radius, nullptr);
}

KnnResult ShardedIndex::RangeSearchWithExplain(
    const std::vector<double>& query, double radius,
    obs::QueryExplain* explain) const {
  SAPLA_TRACE_SPAN("shard/range");
  const auto t0 = SteadyClock::now();
  const std::vector<Pinned> pins = PinShards();
  std::vector<KnnResult> parts(pins.size());
  std::vector<uint64_t> part_us(explain == nullptr ? 0 : pins.size(), 0);
  bool approximate = false;
  for (const Pinned& p : pins)
    if (p.health != ShardHealth::kHealthy) approximate = true;
  uint64_t scatter_us = 0;
  {
    SAPLA_TRACE_SPAN("shard/scatter");
    const auto s0 = SteadyClock::now();
    ParallelFor(0, pins.size(), [&](size_t s) {
      SAPLA_TRACE_SPAN("shard/search");
      const Pinned& p = pins[s];
      if (p.health == ShardHealth::kUnhealthy) return;
      const auto w0 = SteadyClock::now();
      parts[s] = p.health == ShardHealth::kDegraded
                     ? p.gen->index->RangeSearchLowerBound(query, radius)
                     : p.gen->index->RangeSearch(query, radius);
      if (explain != nullptr) part_us[s] = ElapsedUs(w0);
    });
    scatter_us = ElapsedUs(s0);
  }
  KnnResult out;
  uint64_t merge_us = 0;
  {
    SAPLA_TRACE_SPAN("shard/merge");
    const auto m0 = SteadyClock::now();
    for (size_t s = 0; s < pins.size(); ++s) {
      for (const auto& [dist, id] : parts[s].neighbors)
        out.neighbors.emplace_back(dist, id + pins[s].lo);
      out.num_measured += parts[s].num_measured;
      out.counters.Add(parts[s].counters);
    }
    std::sort(out.neighbors.begin(), out.neighbors.end());
    merge_us = ElapsedUs(m0);
  }
  out.approximate = approximate;
  if (explain != nullptr) {
    explain->trace_id = obs::CurrentTraceContext().trace_id;
    explain->total_us = ElapsedUs(t0);
    explain->approximate = out.approximate;
    explain->counters = out.counters;
    explain->stages.push_back({"scatter", scatter_us});
    explain->stages.push_back({"merge", merge_us});
    for (size_t s = 0; s < pins.size(); ++s) {
      obs::ShardExplain part;
      part.part = "shard" + std::to_string(s);
      part.health = static_cast<int>(pins[s].health);
      part.dur_us = part_us[s];
      part.results = parts[s].neighbors.size();
      part.counters = parts[s].counters;
      explain->parts.push_back(std::move(part));
    }
  }
  return out;
}

KnnResult ShardedIndex::RangeSearchLowerBound(const std::vector<double>& query,
                                              double radius) const {
  SAPLA_TRACE_SPAN("shard/range_lb");
  const std::vector<Pinned> pins = PinShards();
  std::vector<KnnResult> parts(pins.size());
  bool approximate = false;
  ParallelFor(0, pins.size(), [&](size_t s) {
    if (pins[s].health == ShardHealth::kUnhealthy) return;
    parts[s] = pins[s].gen->index->RangeSearchLowerBound(query, radius);
  });
  KnnResult out;
  for (size_t s = 0; s < pins.size(); ++s) {
    if (pins[s].health == ShardHealth::kUnhealthy) {
      approximate = true;
      continue;
    }
    for (const auto& [dist, id] : parts[s].neighbors)
      out.neighbors.emplace_back(dist, id + pins[s].lo);
    out.num_measured += parts[s].num_measured;
    out.counters.Add(parts[s].counters);
  }
  std::sort(out.neighbors.begin(), out.neighbors.end());
  out.approximate = approximate;
  return out;
}

// Batch workers re-bind the per-request context before touching the index:
// the batch groups requests from many clients, so the worker's ambient
// context (the scheduler's) is the wrong tree for every one of them.
std::vector<KnnResult> ShardedIndex::KnnBatch(
    const std::vector<std::vector<double>>& queries, size_t k,
    const BatchOptions& options) const {
  std::vector<KnnResult> results(queries.size());
  ParallelFor(
      0, queries.size(),
      [&](size_t i) {
        if (options.cancel && options.cancel(i)) return;
        const obs::TraceContext ctx = options.trace_of
                                          ? options.trace_of(i)
                                          : obs::CurrentTraceContext();
        obs::TraceContextScope trace_scope(ctx);
        SAPLA_TRACE_SPAN("batch/query");
        obs::QueryExplain* explain =
            options.explain_of ? options.explain_of(i) : nullptr;
        results[i] = KnnWithExplain(queries[i], k, explain);
      },
      options.num_threads);
  return results;
}

std::vector<KnnResult> ShardedIndex::RangeSearchBatch(
    const std::vector<std::vector<double>>& queries, double radius,
    const BatchOptions& options) const {
  std::vector<KnnResult> results(queries.size());
  ParallelFor(
      0, queries.size(),
      [&](size_t i) {
        if (options.cancel && options.cancel(i)) return;
        const obs::TraceContext ctx = options.trace_of
                                          ? options.trace_of(i)
                                          : obs::CurrentTraceContext();
        obs::TraceContextScope trace_scope(ctx);
        SAPLA_TRACE_SPAN("batch/query");
        obs::QueryExplain* explain =
            options.explain_of ? options.explain_of(i) : nullptr;
        results[i] = RangeSearchWithExplain(queries[i], radius, explain);
      },
      options.num_threads);
  return results;
}

}  // namespace sapla
