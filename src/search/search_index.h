#ifndef SAPLA_SEARCH_SEARCH_INDEX_H_
#define SAPLA_SEARCH_SEARCH_INDEX_H_

// Query-facing index abstraction shared by the single-shard SimilarityIndex
// (search/knn.h) and the sharded tier (search/sharded_index.h).
//
// The serving layer (serve/service.h) programs against this interface only,
// so one QueryService can front a standalone index or an N-shard fleet
// without knowing which. The contract every implementation honours:
//
//  - Answers are deterministic: neighbors ascend by (distance, id), and the
//    same query against the same corpus returns bit-identical results at
//    every thread count.
//  - corpus_id() changes whenever the served corpus changes (rebuild,
//    snapshot restore, generation swap). The serve result cache keys on it,
//    making stale hits structurally impossible.
//  - After construction/Build the object is immutable from the query path's
//    view; all query methods are const and safe to call concurrently.
//    (ShardedIndex additionally supports live swaps — see its header for
//    the publication protocol that preserves this guarantee per query.)

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "index/index_backend.h"
#include "obs/counters.h"
#include "obs/explain.h"
#include "obs/trace.h"
#include "reduction/representation.h"

namespace sapla {

/// One answer set: (exact distance, series id) ascending by distance,
/// equal distances broken by ascending id (deterministic across thread
/// counts, backends and shard counts).
struct KnnResult {
  std::vector<std::pair<double, size_t>> neighbors;
  /// Series whose raw distance was computed ("had to be measured").
  size_t num_measured = 0;
  /// Per-query work breakdown (obs/counters.h): node expansions by level,
  /// entries pruned at node vs. leaf, lower-bound / exact evaluation counts
  /// and tightness. Invariant: counters.exact_evaluations == num_measured.
  /// Deterministic — identical between Knn and KnnBatch at any thread count.
  SearchCounters counters;
  /// True when the answer was not computed by the full exact path — e.g. a
  /// degraded shard contributed lower-bound-only candidates or an unhealthy
  /// shard was excluded from the scatter. Approximate answers are never
  /// inserted into the serve result cache.
  bool approximate = false;
};

/// Controls one batch call (KnnBatch / RangeSearchBatch).
struct SearchBatchOptions {
  /// Fan-out cap; 0 = the global default (see util/parallel.h).
  size_t num_threads = 0;
  /// Cooperative cancellation hook: when set, invoked with the query
  /// index immediately before that query executes; returning true skips
  /// the query, leaving results[i] empty (no neighbors, num_measured ==
  /// 0). Must be thread-safe — it is called from pool workers. The
  /// serving layer uses this to drop requests whose deadline passed
  /// while the batch was queued.
  std::function<bool(size_t)> cancel;
  /// Request-scoped trace context for query i (obs/trace.h): when set, the
  /// worker executing query i installs it before searching, so per-query
  /// spans stitch into the submitting request's trace tree instead of the
  /// batch thread's ambient context. Must be thread-safe.
  std::function<obs::TraceContext(size_t)> trace_of;
  /// Explain sink for query i: when set and non-null for i, the worker
  /// fills the per-part / per-stage breakdown (obs/explain.h) alongside the
  /// normal result. The pointed-to QueryExplain must outlive the batch
  /// call; each index is written by exactly one worker. Must be
  /// thread-safe.
  std::function<obs::QueryExplain*(size_t)> explain_of;
};

/// Health of one shard as seen by the scatter layer. Mirrors the serving
/// tier's degradation ladder (docs/ROBUSTNESS.md) at shard granularity.
enum class ShardHealth : int {
  kHealthy = 0,    ///< full exact search
  kDegraded = 1,   ///< lower-bound-only answers (approximate)
  kUnhealthy = 2,  ///< excluded from the scatter entirely
};

inline const char* ShardHealthName(ShardHealth h) {
  switch (h) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

/// \brief Abstract searchable corpus: the serving layer's only view of an
/// index.
class SearchIndex {
 public:
  using BatchOptions = SearchBatchOptions;

  virtual ~SearchIndex() = default;

  /// Branch-and-bound k-NN for a raw query of the dataset's length.
  /// k == 0 returns an empty result without touching the index.
  virtual KnnResult Knn(const std::vector<double>& query, size_t k) const = 0;

  /// Approximate k-NN from the reduced representations only (lower-bound
  /// distances, num_measured == 0); the degraded-mode fallback.
  virtual KnnResult KnnLowerBound(const std::vector<double>& query,
                                  size_t k) const = 0;

  /// Knn plus a per-part / per-stage breakdown into `*explain` (never
  /// null). The base implementation attributes everything to one "index"
  /// part; ShardedIndex and IngestController override it with the real
  /// per-shard / per-generation attribution. Post-condition everywhere:
  /// the part counters sum exactly to explain->counters, which equal the
  /// returned result's counters.
  virtual KnnResult KnnExplain(const std::vector<double>& query, size_t k,
                               obs::QueryExplain* explain) const {
    const auto t0 = std::chrono::steady_clock::now();
    KnnResult result = Knn(query, k);
    const uint64_t dur_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    explain->trace_id = obs::CurrentTraceContext().trace_id;
    explain->total_us = dur_us;
    explain->approximate = result.approximate;
    explain->counters = result.counters;
    explain->stages.push_back({"search", dur_us});
    obs::ShardExplain part;
    part.part = "index";
    part.health = static_cast<int>(shard_health(0));
    part.dur_us = dur_us;
    part.results = result.neighbors.size();
    part.counters = result.counters;
    explain->parts.push_back(std::move(part));
    return result;
  }

  /// GEMINI epsilon-range query: exact distances <= radius, ascending.
  virtual KnnResult RangeSearch(const std::vector<double>& query,
                                double radius) const = 0;

  /// Approximate range query from the lower bounds only (a superset of the
  /// exact answer ids, with lower-bound distances). num_measured == 0.
  virtual KnnResult RangeSearchLowerBound(const std::vector<double>& query,
                                          double radius) const = 0;

  /// Batch k-NN with per-query cancellation; non-cancelled entries are
  /// exactly Knn(queries[i], k) at every thread count.
  virtual std::vector<KnnResult> KnnBatch(
      const std::vector<std::vector<double>>& queries, size_t k,
      const BatchOptions& options) const = 0;

  /// Batch range query with per-query cancellation; non-cancelled entries
  /// are exactly RangeSearch(queries[i], radius).
  virtual std::vector<KnnResult> RangeSearchBatch(
      const std::vector<std::vector<double>>& queries, double radius,
      const BatchOptions& options) const = 0;

  /// Convenience overloads: fan across the pool capped at `num_threads`
  /// (0 = global default), no cancellation.
  std::vector<KnnResult> KnnBatch(
      const std::vector<std::vector<double>>& queries, size_t k,
      size_t num_threads = 0) const {
    BatchOptions options;
    options.num_threads = num_threads;
    return KnnBatch(queries, k, options);
  }
  std::vector<KnnResult> RangeSearchBatch(
      const std::vector<std::vector<double>>& queries, double radius,
      size_t num_threads = 0) const {
    BatchOptions options;
    options.num_threads = num_threads;
    return RangeSearchBatch(queries, radius, options);
  }

  virtual Method method() const = 0;
  virtual IndexKind kind() const = 0;
  /// Number of indexed series (0 before Build).
  virtual size_t dataset_size() const = 0;
  /// Length of the indexed series (0 before Build). The serving layer
  /// validates incoming query lengths against this.
  virtual size_t series_length() const = 0;
  /// Stable corpus identity: changes on every rebuild, restore or swap, so
  /// results cached under an old corpus (serve/result_cache.h) can never be
  /// served against a new one.
  virtual uint64_t corpus_id() const = 0;

  /// Shard topology; a standalone index is one always-healthy shard.
  virtual size_t num_shards() const { return 1; }
  virtual ShardHealth shard_health(size_t /*shard*/) const {
    return ShardHealth::kHealthy;
  }

  /// Memory residency of the served corpus (resident vs. mmap-backed
  /// bytes, frame-cache hit/miss counters; representation_store.h). The
  /// serving layer exports these as gauges. Implementations sum across
  /// shards/generations; the default reports nothing.
  virtual StoreFootprint footprint() const { return StoreFootprint{}; }
};

}  // namespace sapla

#endif  // SAPLA_SEARCH_SEARCH_INDEX_H_
