#ifndef SAPLA_SEARCH_SUBSEQUENCE_H_
#define SAPLA_SEARCH_SUBSEQUENCE_H_

// Subsequence similarity search over one long sequence (the GEMINI /
// FRM setting of Faloutsos, Ranganathan & Manolopoulos — the paper's
// reference [10] and the origin of the indexing framework SAPLA plugs
// into).
//
// A SubsequenceIndex slides a length-w window over the sequence (stride
// configurable; stride 1 = every offset), reduces each window with a chosen
// method, and indexes the reductions in a DBCH-tree or R-tree. Queries find
// the closest windows under the Euclidean distance; overlapping hits can be
// suppressed so motif/top-k results are trivial matches-free.

#include <memory>
#include <vector>

#include "search/knn.h"

namespace sapla {

/// One subsequence hit: exact distance and the window's start offset.
struct SubsequenceMatch {
  double distance = 0.0;
  size_t offset = 0;
};

/// \brief Sliding-window similarity index over a long sequence.
class SubsequenceIndex {
 public:
  struct Options {
    size_t window = 128;      ///< subsequence length w
    size_t stride = 1;        ///< window start step (1 = every offset)
    size_t budget_m = 24;     ///< representation coefficients per window
    Method method = Method::kSapla;
    IndexKind kind = IndexKind::kDbchTree;
    bool z_normalize_windows = false;  ///< normalize each window (UCR style)
  };

  /// Builds the index over `sequence`. Requires
  /// sequence.size() >= options.window >= 4.
  static Result<std::unique_ptr<SubsequenceIndex>> Build(
      std::vector<double> sequence, const Options& options);

  /// Top-k closest windows to `query` (query.size() == window). When
  /// `exclude_overlaps` is set, hits whose ranges overlap an already
  /// accepted better hit are dropped (trivial-match suppression).
  std::vector<SubsequenceMatch> Search(const std::vector<double>& query,
                                       size_t k,
                                       bool exclude_overlaps = true) const;

  /// All windows within `radius` of `query`, ascending by distance.
  std::vector<SubsequenceMatch> RangeSearch(const std::vector<double>& query,
                                            double radius) const;

  /// \brief Best motif: the closest pair of non-overlapping windows.
  ///
  /// Classic motif-discovery primitive; uses the index to shortlist
  /// candidates (each window queries its nearest non-trivial neighbor).
  SubsequenceMatch FindMotif(size_t* second_offset) const;

  size_t num_windows() const { return windows_.size(); }
  const Options& options() const { return options_; }

 private:
  SubsequenceIndex() = default;

  std::vector<double> Window(size_t offset) const;

  Options options_;
  std::vector<double> sequence_;
  std::vector<size_t> offsets_;
  Dataset windows_as_dataset_;  // backing storage for the SimilarityIndex
  std::vector<size_t> windows_;  // offsets_[i] of dataset entry i
  std::unique_ptr<SimilarityIndex> index_;
};

}  // namespace sapla

#endif  // SAPLA_SEARCH_SUBSEQUENCE_H_
