#ifndef SAPLA_SEARCH_METRICS_H_
#define SAPLA_SEARCH_METRICS_H_

// Index-quality metrics (paper Eqs. 14 and 15).

#include "search/knn.h"

namespace sapla {

/// Pruning power rho (Eq. 14): fraction of the dataset whose raw distance
/// had to be measured. Lower is better; a linear scan scores 1.0.
double PruningPower(const KnnResult& result, size_t dataset_size);

/// Accuracy (Eq. 15): |returned ∩ true k-NN| / K, measuring false
/// dismissals caused by non-lower-bounding node distances.
double Accuracy(const KnnResult& result, const KnnResult& ground_truth,
                size_t k);

/// 1-NN leave-one-out style classification: fraction of `queries` whose
/// nearest neighbor in `dataset` (excluding exact self-matches at distance
/// ~0) has the same label. Used by the classification example.
double OneNnClassificationAccuracy(const Dataset& dataset,
                                   const std::vector<TimeSeries>& queries,
                                   const SimilarityIndex& index);

}  // namespace sapla

#endif  // SAPLA_SEARCH_METRICS_H_
