#include "search/knn.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>

#include "distance/kernels.h"
#include "distance/mindist.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace sapla {
namespace {

// Post-traversal bookkeeping shared by Knn and RangeSearch: the entries a
// backend never surfaced to the visit callback were pruned at node level,
// and the deepest cascade stage reached classifies the query for the
// serving-layer counters.
void FinalizeCounters(SearchCounters* c, size_t dataset_size) {
  c->entries_pruned_node = dataset_size - c->lb_evaluations;
  if (c->exact_evaluations > 0) {
    c->cascade_stage = CascadeStage::kExact;
  } else if (c->lb_evaluations > 0) {
    c->cascade_stage = CascadeStage::kLeafFilter;
  } else {
    c->cascade_stage = CascadeStage::kNodePrune;
  }
}

// Max-heap of the k best (distance, id) pairs; exposes the pruning bound.
// Ordering is lexicographic on (distance, id): equal distances keep the
// smaller id, so the answer set — not just its order — is deterministic
// and identical between serial, batch and backend variants.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  void Offer(double dist, size_t id) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.emplace(dist, id);
    } else if (std::make_pair(dist, id) < heap_.top()) {
      heap_.pop();
      heap_.emplace(dist, id);
    }
  }

  double Bound() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.top().first;
  }

  std::vector<std::pair<double, size_t>> Sorted() const {
    std::vector<std::pair<double, size_t>> v(heap_.size());
    auto copy = heap_;
    for (size_t i = v.size(); i-- > 0;) {
      v[i] = copy.top();
      copy.pop();
    }
    return v;
  }

 private:
  size_t k_;
  std::priority_queue<std::pair<double, size_t>> heap_;
};

}  // namespace

KnnResult LinearScanKnn(const Dataset& dataset,
                        const std::vector<double>& query, size_t k) {
  SAPLA_TRACE_SPAN("knn/linear_scan");
  KnnResult result;
  if (k == 0) return result;
  TopK top(k);
  for (size_t i = 0; i < dataset.size(); ++i)
    top.Offer(EuclideanDistance(query, dataset.series[i].values), i);
  result.neighbors = top.Sorted();
  result.num_measured = dataset.size();
  result.counters.exact_evaluations = dataset.size();
  result.counters.cascade_stage = CascadeStage::kExact;
  return result;
}

SimilarityIndex::SimilarityIndex(Method method, size_t m, IndexKind kind,
                                 const Options& options)
    : method_(method), m_(m), kind_(kind), options_(options) {
  reducer_ = MakeReducer(method);
}

SimilarityIndex::~SimilarityIndex() = default;

Status SimilarityIndex::Build(const Dataset& dataset, BuildInfo* info) {
  SAPLA_TRACE_SPAN("index/build");
  SAPLA_FAULT_POINT("index/build");
  if (dataset.size() == 0)
    return Status::InvalidArgument("empty dataset");
  if (dataset.length() < 2)
    return Status::InvalidArgument("series shorter than 2 points");
  for (const TimeSeries& ts : dataset.series) {
    if (ts.size() != dataset.length())
      return Status::InvalidArgument("dataset series have unequal lengths");
    for (const double v : ts.values) {
      if (!std::isfinite(v))
        return Status::InvalidArgument(
            "dataset contains non-finite values; clean or impute first");
    }
  }
  dataset_ = &dataset;

  // Per-series reduction is embarrassingly parallel: Reducer::Reduce is
  // const and stateless, and each iteration writes only its own slot.
  CpuTimer reduce_cpu;
  WallTimer reduce_wall;
  reps_.assign(dataset.size(), Representation{});
  ParallelFor(0, dataset.size(), [&](size_t i) {
    reps_[i] = reducer_->Reduce(dataset.series[i].values, m_);
  });
  store_.Reset();
  if (!options_.legacy_aos_corpus) {
    // Transpose the parallel-reduced AoS batch into the columnar store
    // (Append is order-preserving, so store ids == series ids), then drop
    // the AoS copies — the store is the corpus from here on.
    for (const Representation& rep : reps_) store_.Append(rep);
    reps_.clear();
    reps_.shrink_to_fit();
  }
  const double reduce_cpu_s = reduce_cpu.Seconds();
  const double reduce_wall_s = reduce_wall.Seconds();

  CpuTimer insert_timer;
  IndexBackendContext ctx;
  ctx.method = method_;
  ctx.m = m_;
  ctx.dataset = dataset_;
  if (options_.legacy_aos_corpus) {
    ctx.reps = &reps_;
  } else {
    ctx.store = &store_;
  }
  ctx.options = options_;
  auto backend = MakeIndexBackendByName(IndexKindName(kind_), ctx);
  if (!backend.ok()) return backend.status();
  backend_ = std::move(backend).ValueOrDie();
  for (size_t i = 0; i < dataset.size(); ++i) backend_->Insert(i);
  const double insert_s = insert_timer.Seconds();

  if (info != nullptr) {
    info->reduce_cpu_seconds = reduce_cpu_s;
    info->reduce_wall_seconds = reduce_wall_s;
    info->insert_cpu_seconds = insert_s;
    info->stats = stats();
  }
  return Status::OK();
}

Status SimilarityIndex::RestoreFromStore(const Dataset& dataset,
                                         RepresentationStore store,
                                         const std::string& tree_bytes) {
  SAPLA_TRACE_SPAN("index/restore");
  if (options_.legacy_aos_corpus)
    return Status::InvalidArgument(
        "RestoreFromStore requires the columnar corpus layout");
  if (dataset.size() == 0) return Status::InvalidArgument("empty dataset");
  if (store.method() != method_)
    return Status::InvalidArgument("store method does not match the index");
  if (store.size() != dataset.size())
    return Status::InvalidArgument("store size does not match the dataset");
  if (store.series_length() != dataset.length())
    return Status::InvalidArgument(
        "store series length does not match the dataset");
  dataset_ = &dataset;
  store_ = std::move(store);
  reps_.clear();
  reps_.shrink_to_fit();

  IndexBackendContext ctx;
  ctx.method = method_;
  ctx.m = m_;
  ctx.dataset = dataset_;
  ctx.store = &store_;
  ctx.options = options_;
  auto backend = MakeIndexBackendByName(IndexKindName(kind_), ctx);
  if (!backend.ok()) return backend.status();
  backend_ = std::move(backend).ValueOrDie();
  if (!tree_bytes.empty()) {
    const Status restored = backend_->RestoreTree(tree_bytes);
    if (!restored.ok()) return restored;
  } else {
    // Re-insert serially in id order — Build's exact procedure, so the tree
    // shape (and hence every traversal counter) matches a fresh Build.
    for (size_t i = 0; i < dataset.size(); ++i) backend_->Insert(i);
  }
  if (stats().entries != dataset.size())
    return Status::Internal("restored tree entry count mismatch");
  return Status::OK();
}

TreeStats SimilarityIndex::stats() const {
  return backend_ ? backend_->ComputeStats() : TreeStats{};
}

KnnResult SimilarityIndex::Knn(const std::vector<double>& query,
                               size_t k) const {
  SAPLA_TRACE_SPAN("knn/query");
  SAPLA_DCHECK(dataset_ != nullptr);
  SAPLA_DCHECK(query.size() == dataset_->length());
  KnnResult result;
  if (k == 0) return result;
  // The query reduces through the same columnar path as the corpus: into a
  // stack-local single-entry store, viewed for the duration of the query.
  RepresentationStore query_store;
  reducer_->ReduceInto(query, m_, &query_store);
  const RepView query_rep = query_store.view(0);
  const PrefixFitter query_fitter(query);
  DistanceScratch scratch;  // amortizes Dist_PAR buffers across the query

  TopK top(k);
  // Leaf-entry handler, backend-agnostic: lower-bound filter (Dist_LB
  // against the raw query for segment methods — rigorous), then the exact
  // (counted) refinement on the raw series. Over a quantized corpus the
  // filter distance is measured against the *quantized* representation,
  // which can exceed the true lower bound by the store's per-series slack;
  // subtracting it restores a sound bound (so no true neighbor is ever
  // pruned), and the exact refinement below is untouched by quantization.
  SearchCounters& c = result.counters;
  StoreReadPin pin;  // keeps the current cold frame decoded across visits
  const bool has_slack = !options_.legacy_aos_corpus && store_.quantized();
  const auto visit = [&](size_t id, double bound) {
    double lb = FilterDistanceView(query_fitter, query_rep,
                                   corpus_view(id, &pin), &scratch);
    if (has_slack) lb = std::max(0.0, lb - store_.lb_slack(id));
    ++c.lb_evaluations;
    if (lb <= bound) {
      const double exact =
          EuclideanDistance(query, dataset_->series[id].values);
      ++result.num_measured;
      ++c.exact_evaluations;
      if (exact > 0.0) {
        c.lb_tightness_sum += lb / exact;
        ++c.lb_tightness_count;
      }
      top.Offer(exact, id);
    } else {
      ++c.entries_pruned_leaf;
    }
    return top.Bound();
  };
  {
    SAPLA_TRACE_SPAN("knn/traverse");
    backend_->BestFirstSearch(query, query_rep, visit, &c);
  }
  FinalizeCounters(&c, dataset_->size());

  result.neighbors = top.Sorted();
  return result;
}

KnnResult SimilarityIndex::RangeSearch(const std::vector<double>& query,
                                       double radius) const {
  SAPLA_TRACE_SPAN("range/query");
  SAPLA_DCHECK(dataset_ != nullptr);
  SAPLA_DCHECK(query.size() == dataset_->length());
  RepresentationStore query_store;
  reducer_->ReduceInto(query, m_, &query_store);
  const RepView query_rep = query_store.view(0);
  const PrefixFitter query_fitter(query);
  DistanceScratch scratch;

  KnnResult result;
  // The pruning bound is the fixed radius: visit never tightens it, so the
  // traversal enumerates exactly the nodes/entries within range.
  SearchCounters& c = result.counters;
  StoreReadPin pin;
  const bool has_slack = !options_.legacy_aos_corpus && store_.quantized();
  const auto visit = [&](size_t id, double /*bound*/) {
    double lb = FilterDistanceView(query_fitter, query_rep,
                                   corpus_view(id, &pin), &scratch);
    if (has_slack) lb = std::max(0.0, lb - store_.lb_slack(id));
    ++c.lb_evaluations;
    if (lb <= radius) {
      const double exact =
          EuclideanDistance(query, dataset_->series[id].values);
      ++result.num_measured;
      ++c.exact_evaluations;
      if (exact > 0.0) {
        c.lb_tightness_sum += lb / exact;
        ++c.lb_tightness_count;
      }
      if (exact <= radius) result.neighbors.emplace_back(exact, id);
    } else {
      ++c.entries_pruned_leaf;
    }
    return radius;
  };
  {
    SAPLA_TRACE_SPAN("range/traverse");
    backend_->BestFirstSearch(query, query_rep, visit, &c);
  }
  FinalizeCounters(&c, dataset_->size());

  // Pair sort: ascending distance, ties by ascending id — deterministic
  // regardless of backend traversal order.
  std::sort(result.neighbors.begin(), result.neighbors.end());
  return result;
}

KnnResult SimilarityIndex::KnnLowerBound(const std::vector<double>& query,
                                         size_t k) const {
  SAPLA_TRACE_SPAN("knn/lower_bound");
  SAPLA_DCHECK(dataset_ != nullptr);
  SAPLA_DCHECK(query.size() == dataset_->length());
  KnnResult result;
  if (k == 0) return result;
  RepresentationStore query_store;
  reducer_->ReduceInto(query, m_, &query_store);
  const RepView query_rep = query_store.view(0);
  const PrefixFitter query_fitter(query);
  const size_t num = dataset_->size();
  TopK top(k);
  if (options_.legacy_aos_corpus) {
    DistanceScratch scratch;
    for (size_t id = 0; id < num; ++id)
      top.Offer(FilterDistanceView(query_fitter, query_rep,
                                   RepView::Of(reps_[id]), &scratch),
                id);
  } else {
    // Full-corpus scan: the batched kernel streams the store's columns
    // (or decodes frame-by-frame for a cold store). A quantized corpus's
    // bounds are loosened by the per-series slack so the reported
    // distances remain true lower bounds.
    DistanceScratch scratch;
    std::vector<double> lbs(num);
    FilterDistanceBatch(query_fitter, query_rep, store_, nullptr, num,
                        lbs.data(), &scratch);
    if (store_.quantized())
      for (size_t id = 0; id < num; ++id)
        lbs[id] = std::max(0.0, lbs[id] - store_.lb_slack(id));
    for (size_t id = 0; id < num; ++id) top.Offer(lbs[id], id);
  }
  result.neighbors = top.Sorted();
  result.counters.lb_evaluations = num;
  result.counters.cascade_stage = CascadeStage::kLeafFilter;
  return result;
}

KnnResult SimilarityIndex::RangeSearchLowerBound(
    const std::vector<double>& query, double radius) const {
  SAPLA_TRACE_SPAN("range/lower_bound");
  SAPLA_DCHECK(dataset_ != nullptr);
  SAPLA_DCHECK(query.size() == dataset_->length());
  RepresentationStore query_store;
  reducer_->ReduceInto(query, m_, &query_store);
  const RepView query_rep = query_store.view(0);
  const PrefixFitter query_fitter(query);
  const size_t num = dataset_->size();
  KnnResult result;
  if (options_.legacy_aos_corpus) {
    DistanceScratch scratch;
    for (size_t id = 0; id < num; ++id) {
      const double lb = FilterDistanceView(query_fitter, query_rep,
                                           RepView::Of(reps_[id]), &scratch);
      if (lb <= radius) result.neighbors.emplace_back(lb, id);
    }
  } else {
    DistanceScratch scratch;
    std::vector<double> lbs(num);
    FilterDistanceBatch(query_fitter, query_rep, store_, nullptr, num,
                        lbs.data(), &scratch);
    if (store_.quantized())
      for (size_t id = 0; id < num; ++id)
        lbs[id] = std::max(0.0, lbs[id] - store_.lb_slack(id));
    for (size_t id = 0; id < num; ++id)
      if (lbs[id] <= radius) result.neighbors.emplace_back(lbs[id], id);
  }
  std::sort(result.neighbors.begin(), result.neighbors.end());
  result.counters.lb_evaluations = num;
  result.counters.cascade_stage = CascadeStage::kLeafFilter;
  return result;
}

// Batch workers re-bind the per-request context (options.trace_of) before
// searching: the batch mixes requests from many clients, and each query's
// spans must stitch into its own submitter's trace tree.
std::vector<KnnResult> SimilarityIndex::KnnBatch(
    const std::vector<std::vector<double>>& queries, size_t k,
    const BatchOptions& options) const {
  std::vector<KnnResult> results(queries.size());
  ParallelFor(
      0, queries.size(),
      [&](size_t i) {
        if (options.cancel && options.cancel(i)) return;
        const obs::TraceContext ctx = options.trace_of
                                          ? options.trace_of(i)
                                          : obs::CurrentTraceContext();
        obs::TraceContextScope trace_scope(ctx);
        SAPLA_TRACE_SPAN("batch/query");
        if (obs::QueryExplain* explain =
                options.explain_of ? options.explain_of(i) : nullptr) {
          results[i] = KnnExplain(queries[i], k, explain);
        } else {
          results[i] = Knn(queries[i], k);
        }
      },
      options.num_threads);
  return results;
}

std::vector<KnnResult> SimilarityIndex::RangeSearchBatch(
    const std::vector<std::vector<double>>& queries, double radius,
    const BatchOptions& options) const {
  std::vector<KnnResult> results(queries.size());
  ParallelFor(
      0, queries.size(),
      [&](size_t i) {
        if (options.cancel && options.cancel(i)) return;
        const obs::TraceContext ctx = options.trace_of
                                          ? options.trace_of(i)
                                          : obs::CurrentTraceContext();
        obs::TraceContextScope trace_scope(ctx);
        SAPLA_TRACE_SPAN("batch/query");
        obs::QueryExplain* explain =
            options.explain_of ? options.explain_of(i) : nullptr;
        const auto t0 = std::chrono::steady_clock::now();
        results[i] = RangeSearch(queries[i], radius);
        if (explain != nullptr) {
          const uint64_t dur_us = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
          explain->trace_id = ctx.trace_id;
          explain->total_us = dur_us;
          explain->approximate = results[i].approximate;
          explain->counters = results[i].counters;
          explain->stages.push_back({"search", dur_us});
          obs::ShardExplain part;
          part.part = "index";
          part.dur_us = dur_us;
          part.results = results[i].neighbors.size();
          part.counters = results[i].counters;
          explain->parts.push_back(std::move(part));
        }
      },
      options.num_threads);
  return results;
}

}  // namespace sapla
