#include "search/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "distance/mindist.h"
#include "util/timer.h"

namespace sapla {
namespace {

// Max-heap of the k best (distance, id) pairs; exposes the pruning bound.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  void Offer(double dist, size_t id) {
    if (heap_.size() < k_) {
      heap_.emplace(dist, id);
    } else if (dist < heap_.top().first) {
      heap_.pop();
      heap_.emplace(dist, id);
    }
  }

  double Bound() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.top().first;
  }

  std::vector<std::pair<double, size_t>> Sorted() const {
    std::vector<std::pair<double, size_t>> v(heap_.size());
    auto copy = heap_;
    for (size_t i = v.size(); i-- > 0;) {
      v[i] = copy.top();
      copy.pop();
    }
    return v;
  }

 private:
  size_t k_;
  std::priority_queue<std::pair<double, size_t>> heap_;
};

}  // namespace

KnnResult LinearScanKnn(const Dataset& dataset,
                        const std::vector<double>& query, size_t k) {
  TopK top(k);
  for (size_t i = 0; i < dataset.size(); ++i)
    top.Offer(EuclideanDistance(query, dataset.series[i].values), i);
  KnnResult result;
  result.neighbors = top.Sorted();
  result.num_measured = dataset.size();
  return result;
}

SimilarityIndex::SimilarityIndex(Method method, size_t m, IndexKind kind,
                                 const Options& options)
    : method_(method), m_(m), kind_(kind), options_(options) {
  reducer_ = MakeReducer(method);
}

Status SimilarityIndex::Build(const Dataset& dataset, BuildInfo* info) {
  if (dataset.size() == 0)
    return Status::InvalidArgument("empty dataset");
  if (dataset.length() < 2)
    return Status::InvalidArgument("series shorter than 2 points");
  for (const TimeSeries& ts : dataset.series) {
    if (ts.size() != dataset.length())
      return Status::InvalidArgument("dataset series have unequal lengths");
    for (const double v : ts.values) {
      if (!std::isfinite(v))
        return Status::InvalidArgument(
            "dataset contains non-finite values; clean or impute first");
    }
  }
  dataset_ = &dataset;

  CpuTimer reduce_timer;
  reps_.clear();
  reps_.reserve(dataset.size());
  for (const TimeSeries& ts : dataset.series)
    reps_.push_back(reducer_->Reduce(ts.values, m_));
  const double reduce_s = reduce_timer.Seconds();

  CpuTimer insert_timer;
  if (kind_ == IndexKind::kRTree) {
    mapper_ = std::make_unique<FeatureMapper>(method_, m_, dataset.length());
    rtree_ = std::make_unique<RTree>(
        mapper_->dims(), RTree::Options{options_.min_fill, options_.max_fill});
    for (size_t i = 0; i < reps_.size(); ++i) {
      const FeatureMapper::Box box =
          mapper_->MapBox(reps_[i], dataset.series[i].values);
      rtree_->InsertBox(box.lo, box.hi, i);
    }
  } else {
    dbch_ = std::make_unique<DbchTree>(
        [this](size_t a, size_t b) {
          return LowerBoundDistance(reps_[a], reps_[b]);
        },
        DbchTree::Options{options_.min_fill, options_.max_fill});
    for (size_t i = 0; i < reps_.size(); ++i) dbch_->Insert(i);
  }
  const double insert_s = insert_timer.Seconds();

  if (info != nullptr) {
    info->reduce_cpu_seconds = reduce_s;
    info->insert_cpu_seconds = insert_s;
    info->stats = stats();
  }
  return Status::OK();
}

TreeStats SimilarityIndex::stats() const {
  if (rtree_) return rtree_->ComputeStats();
  if (dbch_) return dbch_->ComputeStats();
  return TreeStats{};
}

KnnResult SimilarityIndex::Knn(const std::vector<double>& query,
                               size_t k) const {
  SAPLA_DCHECK(dataset_ != nullptr);
  SAPLA_DCHECK(query.size() == dataset_->length());
  const Representation query_rep = reducer_->Reduce(query, m_);
  const PrefixFitter query_fitter(query);

  TopK top(k);
  KnnResult result;
  // Leaf-entry handler shared by both trees: lower-bound filter (Dist_LB
  // against the raw query for segment methods — rigorous), then the exact
  // (counted) refinement on the raw series.
  const auto visit = [&](size_t id, double bound) {
    const double lb = FilterDistance(query_fitter, query_rep, reps_[id]);
    if (lb <= bound) {
      const double exact =
          EuclideanDistance(query, dataset_->series[id].values);
      ++result.num_measured;
      top.Offer(exact, id);
    }
    return top.Bound();
  };

  if (rtree_) {
    rtree_->BestFirstSearch(
        [&](const std::vector<double>& lo, const std::vector<double>& hi) {
          return mapper_->MinDist(query, query_rep, lo, hi);
        },
        visit);
  } else {
    dbch_->BestFirstSearch(
        [&](size_t id) { return LowerBoundDistance(query_rep, reps_[id]); },
        visit);
  }

  result.neighbors = top.Sorted();
  return result;
}

KnnResult SimilarityIndex::RangeSearch(const std::vector<double>& query,
                                       double radius) const {
  SAPLA_DCHECK(dataset_ != nullptr);
  SAPLA_DCHECK(query.size() == dataset_->length());
  const Representation query_rep = reducer_->Reduce(query, m_);
  const PrefixFitter query_fitter(query);

  KnnResult result;
  // The pruning bound is the fixed radius: visit never tightens it, so the
  // traversal enumerates exactly the nodes/entries within range.
  const auto visit = [&](size_t id, double /*bound*/) {
    const double lb = FilterDistance(query_fitter, query_rep, reps_[id]);
    if (lb <= radius) {
      const double exact =
          EuclideanDistance(query, dataset_->series[id].values);
      ++result.num_measured;
      if (exact <= radius) result.neighbors.emplace_back(exact, id);
    }
    return radius;
  };

  if (rtree_) {
    rtree_->BestFirstSearch(
        [&](const std::vector<double>& lo, const std::vector<double>& hi) {
          return mapper_->MinDist(query, query_rep, lo, hi);
        },
        visit);
  } else {
    dbch_->BestFirstSearch(
        [&](size_t id) { return LowerBoundDistance(query_rep, reps_[id]); },
        visit);
  }
  std::sort(result.neighbors.begin(), result.neighbors.end());
  return result;
}

}  // namespace sapla
