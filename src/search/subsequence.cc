#include "search/subsequence.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/status.h"

namespace sapla {

std::vector<double> SubsequenceIndex::Window(size_t offset) const {
  std::vector<double> w(sequence_.begin() + static_cast<ptrdiff_t>(offset),
                        sequence_.begin() +
                            static_cast<ptrdiff_t>(offset + options_.window));
  if (options_.z_normalize_windows) ZNormalize(&w);
  return w;
}

Result<std::unique_ptr<SubsequenceIndex>> SubsequenceIndex::Build(
    std::vector<double> sequence, const Options& options) {
  if (options.window < 4)
    return Status::InvalidArgument("window must be >= 4");
  if (options.stride < 1)
    return Status::InvalidArgument("stride must be >= 1");
  if (sequence.size() < options.window)
    return Status::InvalidArgument("sequence shorter than one window");

  auto index = std::unique_ptr<SubsequenceIndex>(new SubsequenceIndex());
  index->options_ = options;
  index->sequence_ = std::move(sequence);

  for (size_t off = 0; off + options.window <= index->sequence_.size();
       off += options.stride) {
    index->offsets_.push_back(off);
  }
  index->windows_as_dataset_.name = "subsequences";
  index->windows_as_dataset_.series.reserve(index->offsets_.size());
  index->windows_.reserve(index->offsets_.size());
  for (const size_t off : index->offsets_) {
    index->windows_as_dataset_.series.emplace_back(index->Window(off));
    index->windows_.push_back(off);
  }

  index->index_ = std::make_unique<SimilarityIndex>(
      options.method, options.budget_m, options.kind);
  SAPLA_RETURN_NOT_OK(index->index_->Build(index->windows_as_dataset_));
  return index;
}

std::vector<SubsequenceMatch> SubsequenceIndex::Search(
    const std::vector<double>& query, size_t k, bool exclude_overlaps) const {
  SAPLA_DCHECK(query.size() == options_.window);
  std::vector<double> q = query;
  if (options_.z_normalize_windows) ZNormalize(&q);

  // Over-fetch when suppressing overlaps: each accepted hit can shadow up
  // to 2*(window/stride) neighbors.
  const size_t fetch =
      exclude_overlaps
          ? std::min(windows_.size(),
                     k * (2 * options_.window / options_.stride + 1))
          : k;
  const KnnResult res = index_->Knn(q, fetch);

  std::vector<SubsequenceMatch> out;
  for (const auto& [dist, id] : res.neighbors) {
    const size_t off = windows_[id];
    if (exclude_overlaps) {
      bool shadowed = false;
      for (const SubsequenceMatch& m : out) {
        const size_t lo = m.offset > options_.window ? m.offset - options_.window : 0;
        if (off >= lo && off < m.offset + options_.window) {
          shadowed = true;
          break;
        }
      }
      if (shadowed) continue;
    }
    out.push_back({dist, off});
    if (out.size() >= k) break;
  }
  return out;
}

std::vector<SubsequenceMatch> SubsequenceIndex::RangeSearch(
    const std::vector<double>& query, double radius) const {
  SAPLA_DCHECK(query.size() == options_.window);
  std::vector<double> q = query;
  if (options_.z_normalize_windows) ZNormalize(&q);
  const KnnResult res = index_->RangeSearch(q, radius);
  std::vector<SubsequenceMatch> out;
  out.reserve(res.neighbors.size());
  for (const auto& [dist, id] : res.neighbors)
    out.push_back({dist, windows_[id]});
  return out;
}

SubsequenceMatch SubsequenceIndex::FindMotif(size_t* second_offset) const {
  SubsequenceMatch best{std::numeric_limits<double>::infinity(), 0};
  size_t best_partner = 0;
  for (size_t i = 0; i < windows_.size(); ++i) {
    // Each window asks for its nearest non-overlapping neighbor; fetch a
    // few to skip trivial matches.
    const std::vector<double> q = Window(windows_[i]);
    std::vector<double> qq = q;
    if (options_.z_normalize_windows) ZNormalize(&qq);
    const KnnResult res = index_->Knn(
        qq, std::min<size_t>(windows_.size(),
                             2 * options_.window / options_.stride + 2));
    for (const auto& [dist, id] : res.neighbors) {
      const size_t off = windows_[id];
      const size_t gap = off > windows_[i] ? off - windows_[i]
                                           : windows_[i] - off;
      if (gap < options_.window) continue;  // overlapping: trivial match
      if (dist < best.distance) {
        best = {dist, windows_[i]};
        best_partner = off;
      }
      break;  // nearest non-overlapping found for this window
    }
  }
  if (second_offset != nullptr) *second_offset = best_partner;
  return best;
}

}  // namespace sapla
