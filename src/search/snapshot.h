#ifndef SAPLA_SEARCH_SNAPSHOT_H_
#define SAPLA_SEARCH_SNAPSHOT_H_

// Index snapshots: warm restart for a built SimilarityIndex.
//
// A snapshot persists everything a shard needs to serve without rebuilding:
// the columnar RepresentationStore (v3 CRC'd format, ts/io.h) plus the
// built tree structure (IndexBackend::SerializeTree), wrapped in a CRC'd
// container written through AtomicWriteFile. Loading re-attaches the raw
// dataset (which the snapshot does NOT contain — raw series stay in their
// own archive), verifies a fingerprint so a snapshot can never be glued to
// the wrong corpus, and restores the tree without re-reducing a single
// series or re-running a single insertion.
//
// Container format ("SAPLASNP", version 1, little-endian):
//   magic "SAPLASNP" (8 bytes), u32 version = 1, u32 flags = 0,
//   u32 crc_meta, u32 crc_store, u32 crc_tree, u32 reserved = 0,
//   -- meta section (crc_meta) --
//   method name (u32 len + bytes), index kind name (u32 len + bytes),
//   u64 m, u64 dataset_size, u64 series_length, u64 dataset_fingerprint,
//   u64 store_bytes_len, u64 tree_bytes_len,
//   -- store section (crc_store): SerializeRepresentationStore bytes --
//   -- tree section (crc_tree): backend tree bytes (may be empty) --
// Every section is CRC32C-checked before a byte of it is interpreted, so
// torn writes and bit flips surface as InvalidArgument, never as a
// corrupted index. An empty tree section is valid (a backend without
// SerializeTree support): the loader then rebuilds the tree by Build's
// serial id-order insertion — identical shape, O(n) insert work.
//
// Determinism: loading a snapshot yields an index that answers every query
// bit-identically to the one that saved it (same store, same tree, same
// traversal). The restored store gets a fresh process-unique id, so
// corpus_id() changes across a restore and serve-cache entries from the
// old process can never alias the new corpus.

#include <cstdint>
#include <memory>
#include <string>

#include "reduction/column_codec.h"
#include "search/knn.h"
#include "ts/io.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace sapla {

/// Order- and content-sensitive fingerprint of a dataset's raw series
/// (CRC32C over the value bytes, mixed with size and length). Loading
/// verifies it so a snapshot saved over one corpus is rejected against
/// any other.
uint64_t DatasetFingerprint(const Dataset& dataset);

/// Controls how a snapshot's store section is written.
struct SnapshotWriteOptions {
  /// When non-lossless (a positive step set), the store is quantized
  /// through QuantizeStore before serialization: coefficients snap to the
  /// step grid and the per-series lower-bound slack is recorded, so the
  /// loaded index still never drops a true neighbor (its exact distances
  /// are refined from the raw dataset and answers stay id-identical;
  /// only pruning counters may differ). Default: lossless passthrough.
  StoreCodecOptions codec;
  /// On-disk store revision; kAuto writes v4 exactly when the (possibly
  /// quantized) store is quantized. Force kV4 to make an unquantized
  /// snapshot cold-loadable (cold residency needs the framed v4 layout).
  StoreFormat store_format = StoreFormat::kAuto;
};

/// Controls how a snapshot's store section is loaded.
struct SnapshotLoadOptions {
  /// Serve the store COLD: mmap the snapshot's store section and decode
  /// frames lazily into a bounded cache instead of materializing every
  /// column resident. Requires a v4 store section (see
  /// SnapshotWriteOptions::store_format). The tree section still loads
  /// resident.
  bool cold_store = false;
  /// Cold decode-cache capacity (at least one frame is always retained).
  size_t cold_cache_bytes = 64u << 20;
  /// Optional shared frame-cache budget for the cold tier: pass the same
  /// handle to every shard's Restore so the fleet's decoded frames are
  /// bounded globally instead of `shards × cold_cache_bytes`.
  std::shared_ptr<ResourceBudget> cold_budget;
};

/// Persists `index` (built, columnar corpus) to `path` atomically.
/// Fails with InvalidArgument on an unbuilt or legacy-AoS index; IO
/// failures come back from AtomicWriteFile with the failing step named.
Status SaveIndexSnapshot(const std::string& path, const SimilarityIndex& index,
                         const SnapshotWriteOptions& options = {});

/// Restores `index` from the snapshot at `path`, attaching `dataset` as
/// the raw corpus. `index` must be freshly constructed with the same
/// (method, m, kind) the snapshot was saved with — mismatches, fingerprint
/// mismatches and corruption are all rejected with InvalidArgument before
/// the index is touched. On success the index serves bit-identical answers
/// to the one that saved the snapshot, under a fresh corpus_id (for a
/// snapshot written with a lossy codec, answers are id- and
/// distance-identical to the pre-quantization index; pruning counters may
/// differ).
Status LoadIndexSnapshot(const std::string& path, const Dataset& dataset,
                         SimilarityIndex* index,
                         const SnapshotLoadOptions& options = {});

}  // namespace sapla

#endif  // SAPLA_SEARCH_SNAPSHOT_H_
