#ifndef SAPLA_SEARCH_KNN_H_
#define SAPLA_SEARCH_KNN_H_

// k-NN similarity search (GEMINI framework, paper §1 and §6).
//
// SimilarityIndex owns one dataset's reduced representations plus a
// pluggable IndexBackend (index/index_backend.h) — an R-tree over feature
// MBRs or a DBCH-tree over lower-bounding distances. Queries run best-first
// branch-and-bound: nodes are expanded in increasing lower-bound order;
// leaf entries are filtered by the per-method lower-bounding distance and
// only survivors are measured against the raw series. The number of raw
// measurements is the numerator of the paper's pruning power (Eq. 14).
//
// Concurrency model: Build is single-threaded from the caller's view (the
// reduction loop fans across the global thread pool internally); after
// Build returns the index is immutable, and Knn / RangeSearch / stats are
// const and safe to call concurrently. KnnBatch / RangeSearchBatch fan
// independent queries across the pool (util/parallel.h) and preserve the
// serial per-query results — including exact per-query num_measured —
// bit-identically at any thread count.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/index_backend.h"
#include "obs/counters.h"
#include "reduction/representation.h"
#include "reduction/representation_store.h"
#include "search/search_index.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace sapla {

/// Exact k-NN by full linear scan; num_measured == dataset size (0 when
/// k == 0).
KnnResult LinearScanKnn(const Dataset& dataset, const std::vector<double>& query,
                        size_t k);

/// Build-time telemetry (Fig. 14a's ingest time, Figs. 15/16 tree shape).
/// CPU seconds sum over all threads (CLOCK_PROCESS_CPUTIME_ID), so with a
/// parallel reduction reduce_cpu_seconds still measures total work while
/// reduce_wall_seconds shows the speedup.
struct BuildInfo {
  double reduce_cpu_seconds = 0.0;   ///< dimensionality-reduction CPU time
  double reduce_wall_seconds = 0.0;  ///< dimensionality-reduction wall time
  double insert_cpu_seconds = 0.0;   ///< tree insertion time (serial)
  TreeStats stats;
};

/// Back-compat alias: fill factors now live with the backend layer.
using SimilarityIndexOptions = IndexBackendOptions;

/// \brief A memory-resident similarity index over one dataset.
class SimilarityIndex : public SearchIndex {
 public:
  using Options = SimilarityIndexOptions;
  using BatchOptions = SearchBatchOptions;

  /// \param method reduction method used for every series and query.
  /// \param m representation-coefficient budget (Table 1).
  SimilarityIndex(Method method, size_t m, IndexKind kind,
                  const Options& options = {});
  ~SimilarityIndex();

  /// Reduces and inserts every series of `dataset`. The dataset must stay
  /// alive for the index's lifetime (raw series are referenced for the
  /// refinement step). Requires equal-length series of length >= 2. The
  /// per-series reduction fans across the global thread pool; insertion is
  /// serial (the trees are not concurrent structures).
  Status Build(const Dataset& dataset, BuildInfo* info = nullptr);

  /// Warm restart: adopts an already-reduced columnar corpus instead of
  /// re-running the reduction. `store` must describe `dataset` exactly
  /// (same method, size and series length); `tree_bytes`, when non-empty,
  /// is a serialized backend tree (IndexBackend::SerializeTree) restored
  /// without a single distance evaluation. An empty `tree_bytes` rebuilds
  /// the tree by the same serial id-order insertion Build uses — identical
  /// shape, but O(n) insert work. The store keeps the fresh process-unique
  /// id it was parsed with, so corpus_id() differs from the saved one.
  Status RestoreFromStore(const Dataset& dataset, RepresentationStore store,
                          const std::string& tree_bytes = {});

  /// Branch-and-bound k-NN for a raw query of the dataset's length.
  /// k == 0 returns an empty result without touching the index.
  KnnResult Knn(const std::vector<double>& query, size_t k) const override;

  /// Approximate k-NN from the reduced representations only: every series
  /// is ranked by its lower-bounding filter distance to the query and no
  /// raw series is touched (num_measured == 0). The reported distances are
  /// lower bounds on the true distances, so the answer may differ from
  /// Knn's — this is the degraded fallback the serving layer returns for
  /// deadline-exceeded requests (serve/service.h).
  KnnResult KnnLowerBound(const std::vector<double>& query,
                          size_t k) const override;

  /// Approximate range query from the lower bounds only: every series
  /// whose lower-bounding distance is <= radius (a superset of the exact
  /// answer ids, with lower-bound distances). num_measured == 0.
  KnnResult RangeSearchLowerBound(const std::vector<double>& query,
                                  double radius) const override;

  /// GEMINI epsilon-range query: every series whose exact Euclidean
  /// distance to `query` is <= radius, ascending by distance. Nodes and
  /// entries are pruned at `radius` by the same lower bounds as Knn.
  KnnResult RangeSearch(const std::vector<double>& query,
                        double radius) const override;

  // The num_threads-only batch conveniences live on SearchIndex.
  using SearchIndex::KnnBatch;
  using SearchIndex::RangeSearchBatch;

  /// Batch k-NN with per-query cancellation; non-cancelled entries are
  /// exactly Knn(queries[i], k) — same neighbors, same num_measured — at
  /// every thread count.
  std::vector<KnnResult> KnnBatch(
      const std::vector<std::vector<double>>& queries, size_t k,
      const BatchOptions& options) const override;

  /// Batch range query with per-query cancellation; non-cancelled entries
  /// are exactly RangeSearch(queries[i], radius).
  std::vector<KnnResult> RangeSearchBatch(
      const std::vector<std::vector<double>>& queries, double radius,
      const BatchOptions& options) const override;

  Method method() const override { return method_; }
  IndexKind kind() const override { return kind_; }
  /// Representation-coefficient budget the index was built with.
  size_t m() const { return m_; }
  const Options& options() const { return options_; }
  /// Number of indexed series (0 before Build).
  size_t dataset_size() const override { return dataset_ ? dataset_->size() : 0; }
  /// Length of the indexed series (0 before Build). The serving layer
  /// validates incoming query lengths against this.
  size_t series_length() const override {
    return dataset_ ? dataset_->length() : 0;
  }
  /// The backend after Build (nullptr before); exposed for diagnostics.
  const IndexBackend* backend() const { return backend_.get(); }
  /// The dataset passed to Build/RestoreFromStore (nullptr before); the
  /// snapshot layer fingerprints it.
  const Dataset* dataset() const { return dataset_; }
  /// The columnar corpus (empty before Build or with legacy_aos_corpus).
  const RepresentationStore& store() const { return store_; }
  /// Stable corpus identity: regenerated by every Build, so results cached
  /// under an old corpus (serve/result_cache.h) can never be served against
  /// a rebuilt index.
  uint64_t corpus_id() const override { return store_.id(); }
  /// Resident-vs-mapped bytes of the corpus store (cold stores report
  /// their frame-cache hit/miss counters too).
  StoreFootprint footprint() const override { return store_.footprint(); }
  TreeStats stats() const;

 private:
  /// View of series `id`'s reduction over the active corpus layout; `pin`
  /// keeps a cold store's decoded frame alive while the view is in use
  /// (untouched for hot stores and the AoS layout).
  RepView corpus_view(size_t id, StoreReadPin* pin) const {
    return options_.legacy_aos_corpus ? RepView::Of(reps_[id])
                                      : store_.view(id, pin);
  }

  Method method_;
  size_t m_;
  IndexKind kind_;
  Options options_;

  const Dataset* dataset_ = nullptr;
  std::unique_ptr<Reducer> reducer_;
  /// Canonical corpus: contiguous SoA columns (representation_store.h).
  RepresentationStore store_;
  /// Legacy AoS corpus, populated only with Options::legacy_aos_corpus
  /// (the A/B layout-validation path; see store_parity_test.cc).
  std::vector<Representation> reps_;
  std::unique_ptr<IndexBackend> backend_;
};

}  // namespace sapla

#endif  // SAPLA_SEARCH_KNN_H_
