#ifndef SAPLA_SEARCH_KNN_H_
#define SAPLA_SEARCH_KNN_H_

// k-NN similarity search (GEMINI framework, paper §1 and §6).
//
// SimilarityIndex owns one dataset's reduced representations plus either an
// R-tree over feature MBRs or a DBCH-tree over lower-bounding distances.
// Queries run best-first branch-and-bound: nodes are expanded in increasing
// lower-bound order; leaf entries are filtered by the per-method
// lower-bounding distance and only survivors are measured against the raw
// series. The number of raw measurements is the numerator of the paper's
// pruning power (Eq. 14).

#include <vector>

#include "index/dbch_tree.h"
#include "index/feature_map.h"
#include "index/rtree.h"
#include "reduction/representation.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace sapla {

/// One answer set: (exact distance, series id) ascending by distance.
struct KnnResult {
  std::vector<std::pair<double, size_t>> neighbors;
  /// Series whose raw distance was computed ("had to be measured").
  size_t num_measured = 0;
};

/// Exact k-NN by full linear scan; num_measured == dataset size.
KnnResult LinearScanKnn(const Dataset& dataset, const std::vector<double>& query,
                        size_t k);

/// Which index structure backs a SimilarityIndex.
enum class IndexKind { kRTree, kDbchTree };

/// Build-time telemetry (Fig. 14a's ingest time, Figs. 15/16 tree shape).
struct BuildInfo {
  double reduce_cpu_seconds = 0.0;  ///< dimensionality-reduction time
  double insert_cpu_seconds = 0.0;  ///< tree insertion time
  TreeStats stats;
};

/// Tree fill factors; defaults follow the paper's §6 setup.
struct SimilarityIndexOptions {
  size_t min_fill = 2;
  size_t max_fill = 5;
};

/// \brief A memory-resident similarity index over one dataset.
class SimilarityIndex {
 public:
  using Options = SimilarityIndexOptions;

  /// \param method reduction method used for every series and query.
  /// \param m representation-coefficient budget (Table 1).
  SimilarityIndex(Method method, size_t m, IndexKind kind,
                  const Options& options = {});

  /// Reduces and inserts every series of `dataset`. The dataset must stay
  /// alive for the index's lifetime (raw series are referenced for the
  /// refinement step). Requires equal-length series of length >= 2.
  Status Build(const Dataset& dataset, BuildInfo* info = nullptr);

  /// Branch-and-bound k-NN for a raw query of the dataset's length.
  KnnResult Knn(const std::vector<double>& query, size_t k) const;

  /// GEMINI epsilon-range query: every series whose exact Euclidean
  /// distance to `query` is <= radius, ascending by distance. Nodes and
  /// entries are pruned at `radius` by the same lower bounds as Knn.
  KnnResult RangeSearch(const std::vector<double>& query, double radius) const;

  Method method() const { return method_; }
  IndexKind kind() const { return kind_; }
  TreeStats stats() const;

 private:
  Method method_;
  size_t m_;
  IndexKind kind_;
  Options options_;

  const Dataset* dataset_ = nullptr;
  std::unique_ptr<Reducer> reducer_;
  std::vector<Representation> reps_;
  std::unique_ptr<FeatureMapper> mapper_;
  std::unique_ptr<RTree> rtree_;
  std::unique_ptr<DbchTree> dbch_;
};

}  // namespace sapla

#endif  // SAPLA_SEARCH_KNN_H_
