#ifndef SAPLA_OBS_COUNTERS_H_
#define SAPLA_OBS_COUNTERS_H_

// Per-query search-work counters ("how much work did the index do").
//
// The paper's headline quantities are work avoided: pruning power rho
// (Eq. 14, Fig. 13) and index node accesses (Figs. 15/16). SearchCounters
// makes both observable per query instead of bench-only: the tree layer
// counts node expansions and node-level pruning during BestFirstSearch,
// the search layer counts filter (lower-bound) and refine (exact-distance)
// evaluations, and the struct rides along on every KnnResult — through the
// batch APIs and the serving layer — where obs/metrics.h aggregates it into
// the live registry.
//
// Counting is deterministic: a query's counters are identical between
// serial and batch execution at every thread count, because each query's
// traversal touches no shared mutable state (tests/search_counters_test.cc
// enforces 1/2/8-thread agreement). The invariants the counters satisfy for
// an exact Knn/RangeSearch over a dataset of size N:
//
//   lb_evaluations  == exact_evaluations + entries_pruned_leaf
//   N               == lb_evaluations + entries_pruned_node
//   exact_evaluations == KnnResult::num_measured  (rho's numerator, Eq. 14)

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace sapla {

/// How far a query's filter-and-refine cascade progressed.
enum class CascadeStage : uint8_t {
  kNone = 0,        ///< the query touched nothing (k == 0, empty index)
  kNodePrune = 1,   ///< node-level pruning only; no leaf entry was filtered
  kLeafFilter = 2,  ///< lower bounds evaluated; nothing measured exactly
  kExact = 3,       ///< at least one raw distance computed (full cascade)
};

const char* CascadeStageName(CascadeStage stage);

/// \brief Work performed by one index traversal. Plain counters, owned by
/// the query; merging (Add) is for aggregation across queries.
struct SearchCounters {
  /// Per-level resolution of node accesses (level 0 = root). Deeper levels
  /// collapse into the last slot; 16 levels cover any tree this library
  /// builds (fan-out >= 2 means 2^16 nodes before the slot saturates).
  static constexpr size_t kMaxLevels = 16;

  uint64_t nodes_visited_internal = 0;  ///< internal nodes expanded
  uint64_t nodes_visited_leaf = 0;      ///< leaf nodes expanded
  uint64_t nodes_visited_by_level[kMaxLevels] = {};
  /// Child nodes discarded by the bound — enqueued-then-obsolete ones and
  /// never-enqueued ones alike (the "node accesses avoided" of Fig. 15/16).
  uint64_t nodes_pruned = 0;

  uint64_t lb_evaluations = 0;      ///< leaf entries whose lower bound ran
  uint64_t exact_evaluations = 0;   ///< raw distances computed (Eq. 14)
  uint64_t entries_pruned_leaf = 0; ///< leaf entries the lower bound rejected
  /// Dataset entries that never reached a leaf visit (pruned with their
  /// subtree). Filled by the search layer: N - lb_evaluations.
  uint64_t entries_pruned_node = 0;

  /// Sum of lb/exact over measured entries with exact > 0 (filter
  /// tightness, cf. bench_tightness); mean = sum / count.
  double lb_tightness_sum = 0.0;
  uint64_t lb_tightness_count = 0;

  CascadeStage cascade_stage = CascadeStage::kNone;

  uint64_t nodes_visited() const {
    return nodes_visited_internal + nodes_visited_leaf;
  }

  /// Mean filter tightness in [0, 1]; 0 with no measured pairs.
  double MeanTightness() const {
    return lb_tightness_count == 0
               ? 0.0
               : lb_tightness_sum / static_cast<double>(lb_tightness_count);
  }

  /// Pruning power rho (Eq. 14) reconstructed from the counters.
  double PruningPower(size_t dataset_size) const {
    return dataset_size == 0 ? 0.0
                             : static_cast<double>(exact_evaluations) /
                                   static_cast<double>(dataset_size);
  }

  /// Merges another query's counters into this aggregate.
  void Add(const SearchCounters& other) {
    nodes_visited_internal += other.nodes_visited_internal;
    nodes_visited_leaf += other.nodes_visited_leaf;
    for (size_t l = 0; l < kMaxLevels; ++l)
      nodes_visited_by_level[l] += other.nodes_visited_by_level[l];
    nodes_pruned += other.nodes_pruned;
    lb_evaluations += other.lb_evaluations;
    exact_evaluations += other.exact_evaluations;
    entries_pruned_leaf += other.entries_pruned_leaf;
    entries_pruned_node += other.entries_pruned_node;
    lb_tightness_sum += other.lb_tightness_sum;
    lb_tightness_count += other.lb_tightness_count;
    cascade_stage = std::max(cascade_stage, other.cascade_stage);
  }

  /// Records one expanded node (used by the tree layer).
  void CountNodeVisit(size_t level, bool leaf) {
    if (leaf) {
      ++nodes_visited_leaf;
    } else {
      ++nodes_visited_internal;
    }
    ++nodes_visited_by_level[std::min(level, kMaxLevels - 1)];
  }

  friend bool operator==(const SearchCounters& a, const SearchCounters& b) {
    for (size_t l = 0; l < kMaxLevels; ++l)
      if (a.nodes_visited_by_level[l] != b.nodes_visited_by_level[l])
        return false;
    return a.nodes_visited_internal == b.nodes_visited_internal &&
           a.nodes_visited_leaf == b.nodes_visited_leaf &&
           a.nodes_pruned == b.nodes_pruned &&
           a.lb_evaluations == b.lb_evaluations &&
           a.exact_evaluations == b.exact_evaluations &&
           a.entries_pruned_leaf == b.entries_pruned_leaf &&
           a.entries_pruned_node == b.entries_pruned_node &&
           a.lb_tightness_sum == b.lb_tightness_sum &&
           a.lb_tightness_count == b.lb_tightness_count &&
           a.cascade_stage == b.cascade_stage;
  }
};

}  // namespace sapla

#endif  // SAPLA_OBS_COUNTERS_H_
