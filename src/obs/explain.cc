#include "obs/explain.h"

#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <utility>

namespace sapla {
namespace obs {
namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

// Doubles render finite values plainly and non-finite ones as null (NaN is
// not valid JSON).
void AppendDouble(std::string* out, double v) {
  if (std::isfinite(v)) {
    AppendF(out, "%.17g", v);
  } else {
    *out += "null";
  }
}

void AppendCounters(std::string* out, const SearchCounters& c) {
  AppendF(out,
          "{\"nodes_visited_internal\":%" PRIu64
          ",\"nodes_visited_leaf\":%" PRIu64 ",\"nodes_pruned\":%" PRIu64
          ",\"lb_evaluations\":%" PRIu64 ",\"exact_evaluations\":%" PRIu64
          ",\"entries_pruned_leaf\":%" PRIu64
          ",\"entries_pruned_node\":%" PRIu64 ",\"mean_tightness\":",
          c.nodes_visited_internal, c.nodes_visited_leaf, c.nodes_pruned,
          c.lb_evaluations, c.exact_evaluations, c.entries_pruned_leaf,
          c.entries_pruned_node);
  AppendDouble(out, c.MeanTightness());
  AppendF(out, ",\"cascade_stage\":\"%s\"}",
          CascadeStageName(c.cascade_stage));
}

}  // namespace

const char* ExplainHealthName(int health) {
  switch (health) {
    case 0:
      return "healthy";
    case 1:
      return "degraded";
    case 2:
      return "unhealthy";
  }
  return "unknown";
}

std::string QueryExplainToJson(const QueryExplain& explain) {
  std::string out;
  AppendF(&out,
          "{\"trace_id\":%" PRIu64 ",\"total_us\":%" PRIu64
          ",\"epoch_seq\":%" PRIu64 ",\"approximate\":%s,\"counters\":",
          explain.trace_id, explain.total_us, explain.epoch_seq,
          explain.approximate ? "true" : "false");
  AppendCounters(&out, explain.counters);
  out += ",\"stages\":[";
  for (size_t i = 0; i < explain.stages.size(); ++i) {
    const StageExplain& s = explain.stages[i];
    AppendF(&out, "%s{\"stage\":\"%s\",\"dur_us\":%" PRIu64 "}",
            i == 0 ? "" : ",", s.stage.c_str(), s.dur_us);
  }
  out += "],\"parts\":[";
  for (size_t i = 0; i < explain.parts.size(); ++i) {
    const ShardExplain& p = explain.parts[i];
    AppendF(&out,
            "%s{\"part\":\"%s\",\"health\":\"%s\",\"dur_us\":%" PRIu64
            ",\"results\":%zu,\"counters\":",
            i == 0 ? "" : ",", p.part.c_str(), ExplainHealthName(p.health),
            p.dur_us, p.results);
    AppendCounters(&out, p.counters);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string SlowQueryRecordToJson(const SlowQueryRecord& record) {
  std::string out;
  AppendF(&out,
          "{\"trace_id\":%" PRIu64 ",\"op\":\"%s\",\"k\":%zu,\"radius\":",
          record.trace_id, record.op.c_str(), record.k);
  AppendDouble(&out, record.radius);
  AppendF(&out,
          ",\"status\":\"%s\",\"cache_hit\":%s,\"approximate\":%s,"
          "\"degraded\":%s,\"retry\":%s,\"hedge\":%s,\"queue_us\":%" PRIu64
          ",\"exec_us\":%" PRIu64 ",\"total_us\":%" PRIu64 ",\"explain\":",
          record.status.c_str(), record.cache_hit ? "true" : "false",
          record.approximate ? "true" : "false",
          record.degraded ? "true" : "false",
          record.retry ? "true" : "false", record.hedge ? "true" : "false",
          record.queue_us, record.exec_us, record.total_us);
  out += QueryExplainToJson(record.explain);
  out += '}';
  return out;
}

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SlowQueryLog::Add(std::string json_record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(json_record));
  while (records_.size() > capacity_) records_.pop_front();
  ++total_;
}

std::vector<std::string> SlowQueryLog::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {records_.begin(), records_.end()};
}

uint64_t SlowQueryLog::total_logged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

bool SlowQueryLog::WriteJsonArray(const std::string& path) const {
  const std::vector<std::string> records = Records();
  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = fputc('[', f) != EOF;
  for (size_t i = 0; i < records.size() && ok; ++i) {
    if (i > 0) ok = fputc(',', f) != EOF;
    if (ok) ok = fputc('\n', f) != EOF;
    if (ok)
      ok = fwrite(records[i].data(), 1, records[i].size(), f) ==
           records[i].size();
  }
  if (ok) ok = fputs("\n]\n", f) != EOF;
  if (ok) ok = fflush(f) == 0;
  if (fclose(f) != 0 || !ok) {
    remove(tmp.c_str());
    return false;
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace sapla
