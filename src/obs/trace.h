#ifndef SAPLA_OBS_TRACE_H_
#define SAPLA_OBS_TRACE_H_

// Lightweight scoped tracing spans ("where did the microseconds go") with
// request-scoped context stitching.
//
// SAPLA_TRACE_SPAN("knn/query") opens a span that closes when the enclosing
// scope exits. Completed spans are appended to a per-thread buffer (one
// short uncontended lock per span, no allocation on the hot path — names
// must be string literals) registered in a process-wide registry, and the
// whole recording can be exported as Chrome trace-event JSON
// (chrome://tracing or https://ui.perfetto.dev load the file directly).
//
// Request-scoped stitching: a TraceContext (trace id + current span id +
// sampling decision) is minted once per logical request (QueryService
// admission, or RetryingClient for hedged/retried requests) and installed on
// whichever thread is doing that request's work via TraceContextScope.
// Every span opened under a sampled context records the context's trace id,
// a fresh process-unique span id, and its parent's span id — so all spans
// of one request, across the admission thread, the scheduler, the batch
// pool workers, the shard-scatter workers and hedge duplicates, stitch into
// one tree. ParallelFor forwards the calling thread's context into its
// chunk workers automatically; every other thread hop passes the context
// explicitly. The Chrome export emits flow events ("s"/"f") binding each
// cross-thread parent→child edge so the viewer draws the request as one
// connected graph.
//
// Cost model, hot path:
//   SAPLA_OBS=OFF (CMake)   the span macro expands to nothing — zero cost
//                           at every span site. The context helpers remain
//                           (trace ids still stitch slow-query records) but
//                           no span is ever recorded.
//   compiled in, disabled   one relaxed atomic load per span (the default;
//                           bench_serve_throughput guards the <= 5% budget).
//   enabled, unsampled      the relaxed load plus one thread-local read; no
//                           span-id allocation.
//   enabled, sampled        one clock read + span-id increment + buffer
//                           append per span. Spans are placed per query /
//                           per batch / per chunk, never per entry.
//
// Recording is bounded: each thread keeps at most kMaxEventsPerThread
// completed spans and counts everything beyond that in DroppedEvents()
// (exported, never silent). Buffers outlive their threads (the registry
// holds shared ownership), so spans recorded on pool workers survive into
// the export even after the pool shuts down.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace sapla {
namespace obs {

/// Request annotations carried by a TraceContext (bitmask). Set by the
/// retry layer so the slow-query log can attribute an attempt even when
/// tracing itself is off.
constexpr uint32_t kTraceFlagRetry = 1u << 0;  ///< a retry, not the first try
constexpr uint32_t kTraceFlagHedge = 1u << 1;  ///< a speculative duplicate

/// \brief Identity of one logical request's trace.
///
/// `trace_id` groups every span of the request; `span_id` is the innermost
/// open sampled span on the owning thread (0 = root level — the next span
/// opened becomes a root of the tree); `sampled` gates span-id allocation.
/// Plain value type: copy it across thread hops and reinstall with
/// TraceContextScope.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint32_t flags = 0;
  bool sampled = false;
};

/// One completed span. `start_us`/`dur_us` are microseconds relative to the
/// process trace epoch (first trace use); `tid` is a small stable id
/// assigned per thread in registration order; `depth` is the span's nesting
/// level on its thread (0 = outermost) at the time it opened. `trace_id` /
/// `span_id` / `parent_span_id` are 0 for spans recorded outside any
/// sampled request context.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
  uint32_t depth = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

/// Turns span recording on/off at runtime (off by default). Spans opened
/// while disabled record nothing, even if recording is enabled before they
/// close.
void SetTraceEnabled(bool enabled);
bool TraceEnabled();

/// Drops every recorded event and resets the dropped-event counter. Safe to
/// call concurrently with recording (events recorded during the clear may
/// survive or not).
void ClearTrace();

/// Copies every completed span out of every thread buffer, ordered by
/// (tid, start_us). Safe to call while other threads record.
std::vector<TraceEvent> CollectTrace();

/// Spans not recorded because a thread buffer was full.
uint64_t TraceDroppedEvents();

/// Mints a fresh trace identity for one logical request: a process-unique
/// trace id, root span level, sampled. When tracing is disabled (one
/// relaxed atomic load) it returns a default (unsampled) context and
/// allocates nothing.
TraceContext MintTraceContext();

/// The calling thread's ambient context ({} when none is installed).
/// `span_id` tracks the innermost open sampled span, so capturing the
/// current context inside a span and reinstalling it on another thread
/// parents that thread's spans under this one.
TraceContext CurrentTraceContext();

/// \brief RAII installation of a TraceContext on the current thread.
///
/// Saves the ambient context, installs `ctx`, restores on destruction.
/// Install at every explicit thread hop: the scheduler binding a request's
/// context before executing it, a hedge issue, an ingest writer. (ParallelFor
/// does this automatically for its chunk workers.)
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// Chrome trace-event JSON ({"traceEvents": [...]}, "X" complete events).
/// Spans carrying a trace id get args {trace, span, parent}, and every
/// parent→child edge whose two spans live on different threads additionally
/// emits a flow-event pair ("s" on the parent slice, "f" bound to the start
/// of the child) so the viewer stitches the cross-thread tree.
std::string TraceToChromeJson();

/// Writes TraceToChromeJson() to `path` via AtomicWriteFile (ts/io.h):
/// staged temp file + fsync + rename, with the free-space preflight — so
/// an interrupt mid-write never leaves a truncated JSON array, and a full
/// disk comes back as kResourceExhausted with any previous export intact.
Status WriteChromeTraceStatus(const std::string& path);

/// Bool convenience over WriteChromeTraceStatus (legacy callers). Prefer
/// the Status variant in tools: it says WHY the export failed.
bool WriteChromeTrace(const std::string& path);

/// \brief RAII span; prefer the SAPLA_TRACE_SPAN macro.
///
/// `name` must outlive the recording (pass a string literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_us_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;         // 0 = not under a sampled context
  uint64_t parent_span_id_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace sapla

// The macro indirection makes __LINE__ expand before pasting.
#define SAPLA_TRACE_CONCAT_INNER(a, b) a##b
#define SAPLA_TRACE_CONCAT(a, b) SAPLA_TRACE_CONCAT_INNER(a, b)

#if defined(SAPLA_OBS_DISABLED)
#define SAPLA_TRACE_SPAN(name)
#else
/// Opens a span named `name` (a string literal) for the rest of the scope.
#define SAPLA_TRACE_SPAN(name) \
  ::sapla::obs::ScopedSpan SAPLA_TRACE_CONCAT(sapla_trace_span_, __LINE__)(name)
#endif

#endif  // SAPLA_OBS_TRACE_H_
