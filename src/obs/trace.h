#ifndef SAPLA_OBS_TRACE_H_
#define SAPLA_OBS_TRACE_H_

// Lightweight scoped tracing spans ("where did the microseconds go").
//
// SAPLA_TRACE_SPAN("knn/query") opens a span that closes when the enclosing
// scope exits. Completed spans are appended to a per-thread buffer (one
// short uncontended lock per span, no allocation on the hot path — names
// must be string literals) registered in a process-wide registry, and the
// whole recording can be exported as Chrome trace-event JSON
// (chrome://tracing or https://ui.perfetto.dev load the file directly).
//
// Cost model, hot path:
//   SAPLA_OBS=OFF (CMake)   the macro expands to nothing — zero cost.
//   compiled in, disabled   one relaxed atomic load per span (the default;
//                           bench_serve_throughput guards the <= 5% budget).
//   enabled                 one clock read + buffer append per span. Spans
//                           are placed per query / per batch / per chunk,
//                           never per entry, so the recording overhead stays
//                           far below the work it measures.
//
// Recording is bounded: each thread keeps at most kMaxEventsPerThread
// completed spans and counts everything beyond that in DroppedEvents()
// (exported, never silent). Buffers outlive their threads (the registry
// holds shared ownership), so spans recorded on pool workers survive into
// the export even after the pool shuts down.

#include <cstdint>
#include <string>
#include <vector>

namespace sapla {
namespace obs {

/// One completed span. `start_us`/`dur_us` are microseconds relative to the
/// process trace epoch (first trace use); `tid` is a small stable id
/// assigned per thread in registration order; `depth` is the span's nesting
/// level on its thread (0 = outermost) at the time it opened.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
  uint32_t depth = 0;
};

/// Turns span recording on/off at runtime (off by default). Spans opened
/// while disabled record nothing, even if recording is enabled before they
/// close.
void SetTraceEnabled(bool enabled);
bool TraceEnabled();

/// Drops every recorded event and resets the dropped-event counter. Safe to
/// call concurrently with recording (events recorded during the clear may
/// survive or not).
void ClearTrace();

/// Copies every completed span out of every thread buffer, ordered by
/// (tid, start_us). Safe to call while other threads record.
std::vector<TraceEvent> CollectTrace();

/// Spans not recorded because a thread buffer was full.
uint64_t TraceDroppedEvents();

/// Chrome trace-event JSON ({"traceEvents": [...]}, "X" complete events).
std::string TraceToChromeJson();

/// Writes TraceToChromeJson() to `path`. Returns false on I/O failure.
bool WriteChromeTrace(const std::string& path);

/// \brief RAII span; prefer the SAPLA_TRACE_SPAN macro.
///
/// `name` must outlive the recording (pass a string literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace sapla

// The macro indirection makes __LINE__ expand before pasting.
#define SAPLA_TRACE_CONCAT_INNER(a, b) a##b
#define SAPLA_TRACE_CONCAT(a, b) SAPLA_TRACE_CONCAT_INNER(a, b)

#if defined(SAPLA_OBS_DISABLED)
#define SAPLA_TRACE_SPAN(name)
#else
/// Opens a span named `name` (a string literal) for the rest of the scope.
#define SAPLA_TRACE_SPAN(name) \
  ::sapla::obs::ScopedSpan SAPLA_TRACE_CONCAT(sapla_trace_span_, __LINE__)(name)
#endif

#endif  // SAPLA_OBS_TRACE_H_
