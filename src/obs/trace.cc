#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ts/io.h"

namespace sapla {
namespace obs {
namespace {

using Clock = std::chrono::steady_clock;

// Spans kept per thread before new ones are dropped (and counted).
constexpr size_t kMaxEventsPerThread = 1 << 16;

std::atomic<bool> g_enabled{false};

// Process-unique id wells. Span ids start at 1 so 0 always means "no
// sampled context"; trace ids likewise.
std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_span_id{1};

// The calling thread's ambient request context. Owner-thread only: scopes
// install/restore it, ScopedSpan advances span_id for the nesting.
thread_local TraceContext t_context;

// The trace epoch: every timestamp is relative to the first trace use, so
// exported numbers stay small and runs are comparable.
Clock::time_point Epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            Epoch())
          .count());
}

// Completed spans of one thread. The owning thread appends under `mu`
// (uncontended except while an export runs); collectors copy under `mu`.
// The registry holds shared ownership so buffers of exited threads still
// reach the export.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  uint32_t tid = 0;
  uint32_t live_depth = 0;  // owner-thread only: current nesting level
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
};

Registry& GlobalRegistry() {
  static auto* registry = new Registry;
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    b->tid = registry.next_tid++;
    registry.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::vector<std::shared_ptr<ThreadBuffer>> AllBuffers() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.buffers;
}

}  // namespace

void SetTraceEnabled(bool enabled) {
  if (enabled) Epoch();  // pin the epoch before the first span
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void ClearTrace() {
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::vector<TraceEvent> CollectTrace() {
  std::vector<TraceEvent> all;
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.start_us < b.start_us;
  });
  return all;
}

uint64_t TraceDroppedEvents() {
  uint64_t dropped = 0;
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

TraceContext MintTraceContext() {
  if (!g_enabled.load(std::memory_order_relaxed)) return TraceContext{};
  TraceContext ctx;
  ctx.trace_id = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  ctx.span_id = 0;  // root level: the first span becomes the tree root
  ctx.sampled = true;
  return ctx;
}

TraceContext CurrentTraceContext() { return t_context; }

TraceContextScope::TraceContextScope(const TraceContext& ctx)
    : saved_(t_context) {
  t_context = ctx;
}

TraceContextScope::~TraceContextScope() { t_context = saved_; }

std::string TraceToChromeJson() {
  const std::vector<TraceEvent> events = CollectTrace();
  // Index span id -> event so cross-thread parent/child edges can be found
  // for the flow pass. Span ids are process-unique, so collisions cannot
  // happen.
  std::unordered_map<uint64_t, const TraceEvent*> by_span;
  by_span.reserve(events.size());
  for (const TraceEvent& e : events)
    if (e.span_id != 0) by_span.emplace(e.span_id, &e);

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char line[384];
  bool first = true;
  const auto append = [&](const char* text) {
    if (!first) out += ',';
    out += text;
    first = false;
  };
  for (const TraceEvent& e : events) {
    // Span names are code-side string literals (path-like identifiers), so
    // no JSON escaping is needed beyond trusting the taxonomy.
    if (e.trace_id == 0) {
      snprintf(line, sizeof(line),
               "{\"name\":\"%s\",\"cat\":\"sapla\",\"ph\":\"X\",\"pid\":1,"
               "\"tid\":%u,\"ts\":%llu,\"dur\":%llu}",
               e.name, e.tid, static_cast<unsigned long long>(e.start_us),
               static_cast<unsigned long long>(e.dur_us));
    } else {
      snprintf(line, sizeof(line),
               "{\"name\":\"%s\",\"cat\":\"sapla\",\"ph\":\"X\",\"pid\":1,"
               "\"tid\":%u,\"ts\":%llu,\"dur\":%llu,\"args\":{"
               "\"trace\":%llu,\"span\":%llu,\"parent\":%llu}}",
               e.name, e.tid, static_cast<unsigned long long>(e.start_us),
               static_cast<unsigned long long>(e.dur_us),
               static_cast<unsigned long long>(e.trace_id),
               static_cast<unsigned long long>(e.span_id),
               static_cast<unsigned long long>(e.parent_span_id));
    }
    append(line);
  }
  // Flow pass: one "s"/"f" pair per parent->child edge that crosses
  // threads, id'd by the child span. The start binds to the parent slice
  // (its own start ts lies inside it); the finish binds to the child's
  // start with bp:"e" (bind point = enclosing slice).
  for (const TraceEvent& e : events) {
    if (e.parent_span_id == 0) continue;
    const auto it = by_span.find(e.parent_span_id);
    if (it == by_span.end() || it->second->tid == e.tid) continue;
    const TraceEvent& p = *it->second;
    snprintf(line, sizeof(line),
             "{\"name\":\"ctx\",\"cat\":\"sapla\",\"ph\":\"s\",\"pid\":1,"
             "\"tid\":%u,\"ts\":%llu,\"id\":%llu}",
             p.tid, static_cast<unsigned long long>(p.start_us),
             static_cast<unsigned long long>(e.span_id));
    append(line);
    snprintf(line, sizeof(line),
             "{\"name\":\"ctx\",\"cat\":\"sapla\",\"ph\":\"f\",\"bp\":\"e\","
             "\"pid\":1,\"tid\":%u,\"ts\":%llu,\"id\":%llu}",
             e.tid, static_cast<unsigned long long>(e.start_us),
             static_cast<unsigned long long>(e.span_id));
    append(line);
  }
  out += "]}";
  return out;
}

Status WriteChromeTraceStatus(const std::string& path) {
  // AtomicWriteFile stages to a temp file in the destination directory,
  // fsyncs, and renames — an interrupt mid-write (SIGINT while the array
  // is streaming out) can never leave truncated JSON at `path`, and a
  // full disk is refused as kResourceExhausted with the old file intact.
  return AtomicWriteFile(path, TraceToChromeJson());
}

bool WriteChromeTrace(const std::string& path) {
  return WriteChromeTraceStatus(path).ok();
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  active_ = true;
  ++LocalBuffer().live_depth;
  // Bind into the ambient request context: remember the parent, take a
  // fresh span id, and become the parent of anything nested (including
  // chunks ParallelFor forwards to pool workers). Unsampled spans allocate
  // nothing and record with zero ids.
  trace_id_ = t_context.trace_id;
  parent_span_id_ = t_context.span_id;
  if (t_context.sampled) {
    span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    t_context.span_id = span_id_;
  }
  start_us_ = NowUs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const uint64_t end_us = NowUs();
  ThreadBuffer& buffer = LocalBuffer();
  if (span_id_ != 0) t_context.span_id = parent_span_id_;
  TraceEvent event;
  event.name = name_;
  event.start_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.tid = buffer.tid;
  event.depth = --buffer.live_depth;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_span_id = parent_span_id_;
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(event);
}

}  // namespace obs
}  // namespace sapla
