#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace sapla {
namespace obs {
namespace {

using Clock = std::chrono::steady_clock;

// Spans kept per thread before new ones are dropped (and counted).
constexpr size_t kMaxEventsPerThread = 1 << 16;

std::atomic<bool> g_enabled{false};

// The trace epoch: every timestamp is relative to the first trace use, so
// exported numbers stay small and runs are comparable.
Clock::time_point Epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            Epoch())
          .count());
}

// Completed spans of one thread. The owning thread appends under `mu`
// (uncontended except while an export runs); collectors copy under `mu`.
// The registry holds shared ownership so buffers of exited threads still
// reach the export.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  uint32_t tid = 0;
  uint32_t live_depth = 0;  // owner-thread only: current nesting level
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
};

Registry& GlobalRegistry() {
  static auto* registry = new Registry;
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    b->tid = registry.next_tid++;
    registry.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::vector<std::shared_ptr<ThreadBuffer>> AllBuffers() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.buffers;
}

}  // namespace

void SetTraceEnabled(bool enabled) {
  if (enabled) Epoch();  // pin the epoch before the first span
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void ClearTrace() {
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::vector<TraceEvent> CollectTrace() {
  std::vector<TraceEvent> all;
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.start_us < b.start_us;
  });
  return all;
}

uint64_t TraceDroppedEvents() {
  uint64_t dropped = 0;
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

std::string TraceToChromeJson() {
  const std::vector<TraceEvent> events = CollectTrace();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char line[256];
  bool first = true;
  for (const TraceEvent& e : events) {
    // Span names are code-side string literals (path-like identifiers), so
    // no JSON escaping is needed beyond trusting the taxonomy.
    snprintf(line, sizeof(line),
             "%s{\"name\":\"%s\",\"cat\":\"sapla\",\"ph\":\"X\",\"pid\":1,"
             "\"tid\":%u,\"ts\":%llu,\"dur\":%llu}",
             first ? "" : ",", e.name, e.tid,
             static_cast<unsigned long long>(e.start_us),
             static_cast<unsigned long long>(e.dur_us));
    out += line;
    first = false;
  }
  out += "]}";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = TraceToChromeJson();
  const bool ok = fwrite(json.data(), 1, json.size(), f) == json.size();
  return fclose(f) == 0 && ok;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  active_ = true;
  ++LocalBuffer().live_depth;
  start_us_ = NowUs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const uint64_t end_us = NowUs();
  ThreadBuffer& buffer = LocalBuffer();
  TraceEvent event;
  event.name = name_;
  event.start_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.tid = buffer.tid;
  event.depth = --buffer.live_depth;
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(event);
}

}  // namespace obs
}  // namespace sapla
