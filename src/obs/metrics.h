#ifndef SAPLA_OBS_METRICS_H_
#define SAPLA_OBS_METRICS_H_

// Unified metrics registry and export (formerly serve/metrics.h).
//
// All counters are plain atomics and all distributions are fixed-bucket
// histograms (util/histogram.h), so recording from the admission path, the
// scheduler thread and the pool workers is wait-free and never serializes
// request processing. Readers take an instantaneous Snapshot — a plain
// struct of numbers — and render it through one of three writers:
//
//   MetricsToTable       the repo's aligned-table format (util/table.h),
//                        printable or CSV/JSON via the Table methods
//   MetricsToPrometheus  Prometheus text exposition (counters as _total,
//                        histograms with cumulative le-buckets, _sum and
//                        _count) — scrape-ready; tools/sapla_promcheck
//                        validates the format in CI
//   MetricsToJson        one structured JSON snapshot document
//
// Beyond the serving-lifecycle metrics (see glossary below), the registry
// aggregates per-query SearchCounters (obs/counters.h) from every executed
// request, so the paper's pruning power (Eq. 14, Fig. 13) and node-access
// counts (Figs. 15/16) are live serving metrics instead of bench-only
// numbers.
//
// Glossary (docs/OBSERVABILITY.md has the full prose):
//   admitted            requests accepted into the bounded queue
//   rejected_overloaded requests refused at admission (queue full)
//   rejected_shutdown   requests refused because the service was stopped
//   completed_ok        requests answered with exact results
//   deadline_exceeded   requests dropped because their deadline passed
//   degraded            deadline-exceeded requests that still got an
//                       approximate lower-bound-only answer
//   degraded_served     requests answered inline with approximate results
//                       because the service was in the degraded state
//   rejected_unhealthy  requests refused because the service was unhealthy
//   flush_failures      micro-batches that failed as a unit
//   watchdog_stalls     watchdog observations of a newly stalled scheduler
//   health              gauge: degradation-ladder position (0/1/2)
//   store_resident_bytes gauge: corpus bytes decoded/resident in memory
//   store_mapped_bytes  gauge: corpus bytes served from mmap'd cold columns
//   store_frame_hits/misses gauges: cold-tier decode-cache traffic
//   cache_hits/misses   result-cache outcome at admission time
//   batches_flushed     micro-batches executed
//   queue_wait_us       admission -> start of the request's flush
//   exec_us             wall time of the flush that ran the request
//   total_us            admission -> response resolution
//   batch_size          requests per flushed micro-batch
//   queue_depth         queue length observed after each admission

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "util/histogram.h"
#include "util/resource_budget.h"
#include "util/table.h"

namespace sapla {

/// \brief Wait-free aggregate of SearchCounters across queries.
struct AtomicSearchCounters {
  std::atomic<uint64_t> queries{0};
  /// Sum of dataset sizes over aggregated queries (rho's denominator).
  std::atomic<uint64_t> candidates{0};
  std::atomic<uint64_t> nodes_visited_internal{0};
  std::atomic<uint64_t> nodes_visited_leaf{0};
  std::atomic<uint64_t> nodes_pruned{0};
  std::atomic<uint64_t> lb_evaluations{0};
  std::atomic<uint64_t> exact_evaluations{0};
  std::atomic<uint64_t> entries_pruned_leaf{0};
  std::atomic<uint64_t> entries_pruned_node{0};
  /// Tightness sum in millionths (fixed-point so the add stays wait-free).
  std::atomic<uint64_t> tightness_sum_micro{0};
  std::atomic<uint64_t> tightness_count{0};

  /// Merges one executed query's counters. Thread-safe, wait-free.
  void Add(const SearchCounters& c, size_t dataset_size);
};

/// Point-in-time copy of AtomicSearchCounters plus derived ratios.
struct SearchCountersSnapshot {
  uint64_t queries = 0;
  uint64_t candidates = 0;
  uint64_t nodes_visited_internal = 0;
  uint64_t nodes_visited_leaf = 0;
  uint64_t nodes_pruned = 0;
  uint64_t lb_evaluations = 0;
  uint64_t exact_evaluations = 0;
  uint64_t entries_pruned_leaf = 0;
  uint64_t entries_pruned_node = 0;
  double tightness_sum = 0.0;
  uint64_t tightness_count = 0;

  /// Live pruning power rho (Eq. 14): measured / candidates; 0 when idle.
  double PruningPower() const;
  /// Mean filter tightness over measured pairs; 0 when idle.
  double MeanTightness() const;
};

/// \brief Live, thread-safe metrics for one QueryService instance.
struct ServeMetrics {
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> rejected_overloaded{0};
  std::atomic<uint64_t> rejected_shutdown{0};
  std::atomic<uint64_t> completed_ok{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> batches_flushed{0};

  // Degradation ladder (serve/service.h, docs/ROBUSTNESS.md).
  std::atomic<uint64_t> degraded_served{0};
  std::atomic<uint64_t> rejected_unhealthy{0};
  std::atomic<uint64_t> flush_failures{0};
  std::atomic<uint64_t> watchdog_stalls{0};
  /// Gauge, not a counter: current ladder position (0 healthy, 1 degraded,
  /// 2 unhealthy), kept up to date by the owning QueryService.
  std::atomic<uint64_t> health{0};

  /// Per-shard health gauges (0 healthy, 1 degraded, 2 unhealthy), exported
  /// as labeled `shard_health{shard="N"}` rows. Fixed capacity keeps the
  /// registry allocation-free; fleets beyond kMaxShardGauges export the
  /// first kMaxShardGauges shards. shard_count says how many are live.
  static constexpr size_t kMaxShardGauges = 64;
  std::atomic<uint64_t> shard_count{0};
  std::array<std::atomic<uint64_t>, kMaxShardGauges> shard_health{};

  /// Corpus residency gauges (SearchIndex::footprint), refreshed alongside
  /// the shard-health gauges: bytes of representation data resident in
  /// memory vs. served from mmap-backed cold columns, and the cold tier's
  /// cumulative frame-cache traffic. All zero for a fully hot index except
  /// store_resident_bytes.
  std::atomic<uint64_t> store_resident_bytes{0};
  std::atomic<uint64_t> store_mapped_bytes{0};
  std::atomic<uint64_t> store_frame_hits{0};
  std::atomic<uint64_t> store_frame_misses{0};

  /// Requests that crossed a slow-query threshold (serve/service.h) and
  /// produced a slow-query log record.
  std::atomic<uint64_t> slow_queries{0};

  // Resource governance (util/resource_budget.h, docs/ROBUSTNESS.md).
  /// Requests shed at admission by queue-delay adaptive control (oldest
  /// queued arrival older than the target; low-priority work bounced).
  std::atomic<uint64_t> shed_early{0};
  /// Result-cache shrinks forced by soft memory pressure.
  std::atomic<uint64_t> budget_cache_shrinks{0};
  /// Requests degraded to lower-bound-only answers by hard memory
  /// pressure (as opposed to scheduler-stall degradation).
  std::atomic<uint64_t> budget_degraded{0};

  AtomicSearchCounters search;

  Histogram queue_wait_us;
  Histogram exec_us;
  Histogram total_us;
  Histogram batch_size;
  Histogram queue_depth;

  /// Sliding-window companions to total_us / exec_us
  /// (util/histogram.h WindowedHistogram): quantiles over roughly the last
  /// ServeOptions::window_us instead of the process lifetime. Exported as
  /// `<prefix>_window_latency_us{stage=...,quantile=...}` gauges.
  WindowedHistogram window_total_us;
  WindowedHistogram window_exec_us;
};

/// One histogram, collapsed to the numbers reports care about. Quantiles
/// and mean are NaN when the histogram is empty (rendered "--" / omitted).
struct HistogramSnapshot {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  uint64_t max = 0;
};

/// Point-in-time copy of every metric; safe to read field by field.
struct ServeMetricsSnapshot {
  uint64_t admitted = 0;
  uint64_t rejected_overloaded = 0;
  uint64_t rejected_shutdown = 0;
  uint64_t completed_ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t degraded = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batches_flushed = 0;

  uint64_t degraded_served = 0;
  uint64_t rejected_unhealthy = 0;
  uint64_t flush_failures = 0;
  uint64_t watchdog_stalls = 0;
  uint64_t shed_early = 0;
  uint64_t budget_cache_shrinks = 0;
  uint64_t budget_degraded = 0;
  uint64_t health = 0;
  /// One ladder position per live shard (empty for a non-sharded service).
  std::vector<uint64_t> shard_health;

  uint64_t store_resident_bytes = 0;
  uint64_t store_mapped_bytes = 0;
  uint64_t store_frame_hits = 0;
  uint64_t store_frame_misses = 0;

  uint64_t slow_queries = 0;

  SearchCountersSnapshot search;

  HistogramSnapshot queue_wait_us;
  HistogramSnapshot exec_us;
  HistogramSnapshot total_us;
  HistogramSnapshot batch_size;
  HistogramSnapshot queue_depth;

  /// Live-window views of total_us / exec_us (see ServeMetrics); the
  /// window length rides along so exports can label the semantics.
  uint64_t window_us = 0;
  HistogramSnapshot window_total_us;
  HistogramSnapshot window_exec_us;

  /// cache_hits / (cache_hits + cache_misses); 0 with no lookups.
  double CacheHitRate() const;
};

/// Collapses one histogram (concurrent-safe; see util/histogram.h).
HistogramSnapshot SnapshotHistogram(const Histogram& h);

/// Snapshots the search-counter aggregate.
SearchCountersSnapshot SnapshotSearchCounters(const AtomicSearchCounters& c);

/// Snapshots every counter and histogram.
ServeMetricsSnapshot SnapshotMetrics(const ServeMetrics& metrics);

/// Renders a snapshot as one table (counters first, then one row per
/// histogram with count/mean/p50/p95/p99/max; empty histograms render "--"),
/// printable or CSV/JSON via util/table.h.
Table MetricsToTable(const ServeMetricsSnapshot& snap,
                     const std::string& title = "Serve metrics");

/// Prometheus text exposition of the registry. Takes the live registry (not
/// a snapshot) because histogram export needs the raw bucket counts.
/// Counters become `<prefix>_<name>_total`, gauges stay bare, histograms
/// emit cumulative `_bucket{le="..."}` lines plus `_sum` and `_count`.
std::string MetricsToPrometheus(const ServeMetrics& metrics,
                                const std::string& prefix = "sapla");

/// Writes MetricsToPrometheus to `path`. Returns false on I/O failure.
bool WritePrometheus(const ServeMetrics& metrics, const std::string& path,
                     const std::string& prefix = "sapla");

/// One structured JSON document: {"counters": {...}, "search": {...},
/// "histograms": {name: {count, mean, p50, p95, p99, max}}}. Empty
/// histograms emit null for mean/quantiles (NaN is not valid JSON).
std::string MetricsToJson(const ServeMetricsSnapshot& snap);

/// Writes MetricsToJson to `path`. Returns false on I/O failure.
bool WriteMetricsJson(const ServeMetricsSnapshot& snap,
                      const std::string& path);

// ---------------------------------------------------------------------------
// Ingest metrics (src/ingest/ingest_controller.h).
//
// Same wait-free discipline as ServeMetrics: the writer path (one mutation
// at a time under the controller's writer lock, plus query threads reading
// gauges) only touches relaxed atomics. Exported under the `sapla_ingest_`
// prefix; tools/sapla_promcheck validates the families in CI.
//
// Glossary (docs/INGEST.md):
//   inserts / deletes    acknowledged mutations (WAL-logged when durable)
//   rejected_overloaded  inserts refused by admission control (too many
//                        sealed minors awaiting compaction)
//   seals                memtables frozen into minor generations
//   compactions          minor+main merges into a fresh main generation
//   checkpoints          manifest+snapshot+WAL-truncation cycles
//   wal_records/bytes    frames appended to the write-ahead log
//   wal_replayed         records applied by Recover()
//   memtable_size        gauge: entries in the live memtable
//   sealed_minors        gauge: minor generations awaiting compaction
//   tombstones           gauge: deleted/expired ids awaiting compaction
//   visible_series       gauge: series a query started now would see

/// \brief Live, thread-safe metrics for one IngestController.
struct IngestMetrics {
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> rejected_overloaded{0};
  std::atomic<uint64_t> seals{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> checkpoints{0};
  std::atomic<uint64_t> wal_records{0};
  std::atomic<uint64_t> wal_bytes{0};
  std::atomic<uint64_t> wal_replayed{0};
  /// Writes shed because the memory budget stayed hard-saturated after a
  /// forced seal/compaction (util/resource_budget.h).
  std::atomic<uint64_t> rejected_budget{0};
  /// Seal+compact cycles forced by budget pressure rather than the normal
  /// memtable_max / compact_min_minors triggers.
  std::atomic<uint64_t> budget_forced_compactions{0};

  // Gauges, kept current by the controller.
  std::atomic<uint64_t> memtable_size{0};
  std::atomic<uint64_t> sealed_minors{0};
  std::atomic<uint64_t> tombstones{0};
  std::atomic<uint64_t> visible_series{0};
  /// Bytes the controller currently accounts against its memory budget
  /// (memtable + sealed minors).
  std::atomic<uint64_t> budget_bytes{0};
};

/// Point-in-time copy of every ingest metric.
struct IngestMetricsSnapshot {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t rejected_overloaded = 0;
  uint64_t seals = 0;
  uint64_t compactions = 0;
  uint64_t checkpoints = 0;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_replayed = 0;
  uint64_t rejected_budget = 0;
  uint64_t budget_forced_compactions = 0;
  uint64_t memtable_size = 0;
  uint64_t sealed_minors = 0;
  uint64_t tombstones = 0;
  uint64_t visible_series = 0;
  uint64_t budget_bytes = 0;
};

/// Snapshots every ingest counter and gauge.
IngestMetricsSnapshot SnapshotIngestMetrics(const IngestMetrics& metrics);

/// Renders an ingest snapshot as a two-column table.
Table IngestMetricsToTable(const IngestMetricsSnapshot& snap,
                           const std::string& title = "Ingest metrics");

/// Prometheus text exposition of the ingest registry: counters become
/// `<prefix>_<name>_total`, gauges stay bare. Concatenates cleanly after
/// MetricsToPrometheus output (distinct family names), which is how
/// sapla_loadgen exports a combined serve+ingest scrape.
std::string IngestMetricsToPrometheus(const IngestMetrics& metrics,
                                      const std::string& prefix =
                                          "sapla_ingest");

/// One structured JSON document for the ingest snapshot.
std::string IngestMetricsToJson(const IngestMetricsSnapshot& snap);

/// Prometheus text exposition of a ResourceBudget tree
/// (util/resource_budget.h): one labeled row per budget node, keyed by
/// `component="<name>"`, under `<prefix>_{capacity_bytes, used_bytes,
/// peak_used_bytes, pressure}` gauges and `<prefix>_{rejections,
/// overflows}_total` counters. Concatenates cleanly after the serve and
/// ingest expositions (distinct family names).
std::string BudgetMetricsToPrometheus(const ResourceBudget& root,
                                      const std::string& prefix =
                                          "sapla_budget");

/// Renders a budget tree as a table (one row per node).
Table BudgetMetricsToTable(const ResourceBudget& root,
                           const std::string& title = "Resource budgets");

}  // namespace sapla

#endif  // SAPLA_OBS_METRICS_H_
