#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sapla {
namespace {

// Fixed-point scale for the tightness sum (wait-free double aggregation).
constexpr double kMicro = 1e6;

std::string U64(uint64_t v) { return std::to_string(v); }

std::string Double(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void AtomicSearchCounters::Add(const SearchCounters& c, size_t dataset_size) {
  queries.fetch_add(1, std::memory_order_relaxed);
  candidates.fetch_add(dataset_size, std::memory_order_relaxed);
  nodes_visited_internal.fetch_add(c.nodes_visited_internal,
                                   std::memory_order_relaxed);
  nodes_visited_leaf.fetch_add(c.nodes_visited_leaf,
                               std::memory_order_relaxed);
  nodes_pruned.fetch_add(c.nodes_pruned, std::memory_order_relaxed);
  lb_evaluations.fetch_add(c.lb_evaluations, std::memory_order_relaxed);
  exact_evaluations.fetch_add(c.exact_evaluations, std::memory_order_relaxed);
  entries_pruned_leaf.fetch_add(c.entries_pruned_leaf,
                                std::memory_order_relaxed);
  entries_pruned_node.fetch_add(c.entries_pruned_node,
                                std::memory_order_relaxed);
  tightness_sum_micro.fetch_add(
      static_cast<uint64_t>(c.lb_tightness_sum * kMicro + 0.5),
      std::memory_order_relaxed);
  tightness_count.fetch_add(c.lb_tightness_count, std::memory_order_relaxed);
}

double SearchCountersSnapshot::PruningPower() const {
  return candidates == 0 ? 0.0
                         : static_cast<double>(exact_evaluations) /
                               static_cast<double>(candidates);
}

double SearchCountersSnapshot::MeanTightness() const {
  return tightness_count == 0
             ? 0.0
             : tightness_sum / static_cast<double>(tightness_count);
}

double ServeMetricsSnapshot::CacheHitRate() const {
  const uint64_t lookups = cache_hits + cache_misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(lookups);
}

HistogramSnapshot SnapshotHistogram(const Histogram& h) {
  HistogramSnapshot s;
  s.count = h.Count();
  s.mean = h.Mean();
  s.p50 = h.Quantile(0.50);
  s.p95 = h.Quantile(0.95);
  s.p99 = h.Quantile(0.99);
  s.max = h.Max();
  return s;
}

SearchCountersSnapshot SnapshotSearchCounters(const AtomicSearchCounters& c) {
  SearchCountersSnapshot s;
  s.queries = c.queries.load();
  s.candidates = c.candidates.load();
  s.nodes_visited_internal = c.nodes_visited_internal.load();
  s.nodes_visited_leaf = c.nodes_visited_leaf.load();
  s.nodes_pruned = c.nodes_pruned.load();
  s.lb_evaluations = c.lb_evaluations.load();
  s.exact_evaluations = c.exact_evaluations.load();
  s.entries_pruned_leaf = c.entries_pruned_leaf.load();
  s.entries_pruned_node = c.entries_pruned_node.load();
  s.tightness_sum = static_cast<double>(c.tightness_sum_micro.load()) / kMicro;
  s.tightness_count = c.tightness_count.load();
  return s;
}

ServeMetricsSnapshot SnapshotMetrics(const ServeMetrics& metrics) {
  ServeMetricsSnapshot s;
  s.admitted = metrics.admitted.load();
  s.rejected_overloaded = metrics.rejected_overloaded.load();
  s.rejected_shutdown = metrics.rejected_shutdown.load();
  s.completed_ok = metrics.completed_ok.load();
  s.deadline_exceeded = metrics.deadline_exceeded.load();
  s.degraded = metrics.degraded.load();
  s.cache_hits = metrics.cache_hits.load();
  s.cache_misses = metrics.cache_misses.load();
  s.batches_flushed = metrics.batches_flushed.load();
  s.degraded_served = metrics.degraded_served.load();
  s.rejected_unhealthy = metrics.rejected_unhealthy.load();
  s.flush_failures = metrics.flush_failures.load();
  s.watchdog_stalls = metrics.watchdog_stalls.load();
  s.shed_early = metrics.shed_early.load();
  s.budget_cache_shrinks = metrics.budget_cache_shrinks.load();
  s.budget_degraded = metrics.budget_degraded.load();
  s.health = metrics.health.load();
  const size_t shards = std::min<size_t>(metrics.shard_count.load(),
                                         ServeMetrics::kMaxShardGauges);
  s.shard_health.reserve(shards);
  for (size_t i = 0; i < shards; ++i)
    s.shard_health.push_back(metrics.shard_health[i].load());
  s.store_resident_bytes = metrics.store_resident_bytes.load();
  s.store_mapped_bytes = metrics.store_mapped_bytes.load();
  s.store_frame_hits = metrics.store_frame_hits.load();
  s.store_frame_misses = metrics.store_frame_misses.load();
  s.slow_queries = metrics.slow_queries.load();
  s.search = SnapshotSearchCounters(metrics.search);
  s.queue_wait_us = SnapshotHistogram(metrics.queue_wait_us);
  s.exec_us = SnapshotHistogram(metrics.exec_us);
  s.total_us = SnapshotHistogram(metrics.total_us);
  s.batch_size = SnapshotHistogram(metrics.batch_size);
  s.queue_depth = SnapshotHistogram(metrics.queue_depth);
  s.window_us = metrics.window_total_us.window_us();
  {
    Histogram merged;
    metrics.window_total_us.MergeInto(&merged);
    s.window_total_us = SnapshotHistogram(merged);
  }
  {
    Histogram merged;
    metrics.window_exec_us.MergeInto(&merged);
    s.window_exec_us = SnapshotHistogram(merged);
  }
  return s;
}

Table MetricsToTable(const ServeMetricsSnapshot& snap,
                     const std::string& title) {
  Table t(title);
  t.SetHeader({"Metric", "Count", "Mean", "P50", "P95", "P99", "Max"});
  const auto counter = [&](const std::string& name, uint64_t value) {
    t.AddRow({name, std::to_string(value), "", "", "", "", ""});
  };
  const auto ratio = [&](const std::string& name, double value) {
    t.AddRow({name, Table::Num(value, 4), "", "", "", "", ""});
  };
  // An empty histogram has no percentiles: NaN upstream, "--" in the table
  // (the bug where an empty run reported bucket-0 edges as latencies).
  const auto hist = [&](const std::string& name, const HistogramSnapshot& h) {
    if (h.count == 0) {
      t.AddRow({name, "0", "--", "--", "--", "--", "--"});
      return;
    }
    t.AddRow({name, std::to_string(h.count), Table::Num(h.mean, 4),
              Table::Num(h.p50, 4), Table::Num(h.p95, 4), Table::Num(h.p99, 4),
              std::to_string(h.max)});
  };
  counter("admitted", snap.admitted);
  counter("rejected_overloaded", snap.rejected_overloaded);
  counter("rejected_shutdown", snap.rejected_shutdown);
  counter("completed_ok", snap.completed_ok);
  counter("deadline_exceeded", snap.deadline_exceeded);
  counter("degraded", snap.degraded);
  counter("cache_hits", snap.cache_hits);
  counter("cache_misses", snap.cache_misses);
  ratio("cache_hit_rate", snap.CacheHitRate());
  counter("batches_flushed", snap.batches_flushed);
  counter("degraded_served", snap.degraded_served);
  counter("rejected_unhealthy", snap.rejected_unhealthy);
  counter("flush_failures", snap.flush_failures);
  counter("watchdog_stalls", snap.watchdog_stalls);
  counter("slow_queries", snap.slow_queries);
  counter("shed_early", snap.shed_early);
  counter("budget_cache_shrinks", snap.budget_cache_shrinks);
  counter("budget_degraded", snap.budget_degraded);
  counter("health", snap.health);
  for (size_t i = 0; i < snap.shard_health.size(); ++i)
    counter("shard_health{shard=" + std::to_string(i) + "}",
            snap.shard_health[i]);
  counter("store_resident_bytes", snap.store_resident_bytes);
  counter("store_mapped_bytes", snap.store_mapped_bytes);
  counter("store_frame_hits", snap.store_frame_hits);
  counter("store_frame_misses", snap.store_frame_misses);
  counter("search_queries", snap.search.queries);
  counter("search_nodes_visited_internal", snap.search.nodes_visited_internal);
  counter("search_nodes_visited_leaf", snap.search.nodes_visited_leaf);
  counter("search_nodes_pruned", snap.search.nodes_pruned);
  counter("search_lb_evaluations", snap.search.lb_evaluations);
  counter("search_exact_evaluations", snap.search.exact_evaluations);
  counter("search_entries_pruned_leaf", snap.search.entries_pruned_leaf);
  counter("search_entries_pruned_node", snap.search.entries_pruned_node);
  ratio("search_pruning_power", snap.search.PruningPower());
  ratio("search_mean_tightness", snap.search.MeanTightness());
  hist("queue_wait_us", snap.queue_wait_us);
  hist("exec_us", snap.exec_us);
  hist("total_us", snap.total_us);
  hist("batch_size", snap.batch_size);
  hist("queue_depth", snap.queue_depth);
  const std::string window_s = std::to_string(snap.window_us / 1'000'000);
  hist("window_total_us[" + window_s + "s]", snap.window_total_us);
  hist("window_exec_us[" + window_s + "s]", snap.window_exec_us);
  return t;
}

namespace {

void AppendCounter(std::string& out, const std::string& prefix,
                   const std::string& name, const char* help, uint64_t value) {
  out += "# HELP " + prefix + "_" + name + "_total " + help + "\n";
  out += "# TYPE " + prefix + "_" + name + "_total counter\n";
  out += prefix + "_" + name + "_total " + U64(value) + "\n";
}

void AppendGauge(std::string& out, const std::string& prefix,
                 const std::string& name, const char* help, double value) {
  out += "# HELP " + prefix + "_" + name + " " + help + "\n";
  out += "# TYPE " + prefix + "_" + name + " gauge\n";
  out += prefix + "_" + name + " " + Double(value) + "\n";
}

void AppendHistogram(std::string& out, const std::string& prefix,
                     const std::string& name, const char* help,
                     const Histogram& h) {
  const std::string full = prefix + "_" + name;
  out += "# HELP " + full + " " + help + "\n";
  out += "# TYPE " + full + " histogram\n";
  // One instantaneous bucket snapshot keeps _count consistent with the
  // cumulative buckets even while writers record concurrently.
  uint64_t counts[Histogram::kNumBuckets];
  size_t last_used = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    counts[b] = h.BucketCount(b);
    if (counts[b] != 0) last_used = b;
  }
  uint64_t cum = 0;
  for (size_t b = 0; b <= last_used; ++b) {
    cum += counts[b];
    out += full + "_bucket{le=\"" + U64(Histogram::BucketUpper(b)) + "\"} " +
           U64(cum) + "\n";
  }
  for (size_t b = last_used + 1; b < Histogram::kNumBuckets; ++b)
    cum += counts[b];  // the tail is all zeros, but keep the math honest
  out += full + "_bucket{le=\"+Inf\"} " + U64(cum) + "\n";
  out += full + "_sum " + U64(h.Sum()) + "\n";
  out += full + "_count " + U64(cum) + "\n";
}

}  // namespace

std::string MetricsToPrometheus(const ServeMetrics& metrics,
                                const std::string& prefix) {
  const ServeMetricsSnapshot snap = SnapshotMetrics(metrics);
  std::string out;
  out.reserve(8192);
  AppendCounter(out, prefix, "admitted",
                "Requests accepted into the bounded queue.", snap.admitted);
  AppendCounter(out, prefix, "rejected_overloaded",
                "Requests refused at admission (queue full).",
                snap.rejected_overloaded);
  AppendCounter(out, prefix, "rejected_shutdown",
                "Requests refused because the service was stopped.",
                snap.rejected_shutdown);
  AppendCounter(out, prefix, "completed_ok",
                "Requests answered with exact results.", snap.completed_ok);
  AppendCounter(out, prefix, "deadline_exceeded",
                "Requests dropped because their deadline passed.",
                snap.deadline_exceeded);
  AppendCounter(out, prefix, "degraded",
                "Deadline-exceeded requests answered approximately.",
                snap.degraded);
  AppendCounter(out, prefix, "cache_hits",
                "Result-cache hits at admission time.", snap.cache_hits);
  AppendCounter(out, prefix, "cache_misses",
                "Result-cache misses at admission time.", snap.cache_misses);
  AppendCounter(out, prefix, "batches_flushed", "Micro-batches executed.",
                snap.batches_flushed);
  AppendCounter(out, prefix, "degraded_served",
                "Requests answered inline with approximate results while "
                "degraded.",
                snap.degraded_served);
  AppendCounter(out, prefix, "rejected_unhealthy",
                "Requests refused because the service was unhealthy.",
                snap.rejected_unhealthy);
  AppendCounter(out, prefix, "flush_failures",
                "Micro-batches that failed as a unit.", snap.flush_failures);
  AppendCounter(out, prefix, "watchdog_stalls",
                "Watchdog observations of a newly stalled scheduler.",
                snap.watchdog_stalls);
  AppendCounter(out, prefix, "slow_queries",
                "Requests that crossed a slow-query threshold and were "
                "logged.",
                snap.slow_queries);
  AppendCounter(out, prefix, "shed_early",
                "Requests shed at admission by queue-delay adaptive "
                "control.",
                snap.shed_early);
  AppendCounter(out, prefix, "budget_cache_shrinks",
                "Result-cache shrinks forced by soft memory pressure.",
                snap.budget_cache_shrinks);
  AppendCounter(out, prefix, "budget_degraded",
                "Requests degraded to lower-bound answers by hard memory "
                "pressure.",
                snap.budget_degraded);
  AppendCounter(out, prefix, "search_queries",
                "Index traversals aggregated into the search counters.",
                snap.search.queries);
  AppendCounter(out, prefix, "search_candidates",
                "Candidate entries across aggregated traversals "
                "(pruning-power denominator).",
                snap.search.candidates);
  AppendCounter(out, prefix, "search_nodes_visited_internal",
                "Internal index nodes expanded.",
                snap.search.nodes_visited_internal);
  AppendCounter(out, prefix, "search_nodes_visited_leaf",
                "Leaf index nodes expanded.", snap.search.nodes_visited_leaf);
  AppendCounter(out, prefix, "search_nodes_pruned",
                "Index nodes discarded by the pruning bound.",
                snap.search.nodes_pruned);
  AppendCounter(out, prefix, "search_lb_evaluations",
                "Lower-bound (filter) distance evaluations.",
                snap.search.lb_evaluations);
  AppendCounter(out, prefix, "search_exact_evaluations",
                "Exact (refine) distance evaluations — Eq. 14 numerator.",
                snap.search.exact_evaluations);
  AppendCounter(out, prefix, "search_entries_pruned_leaf",
                "Leaf entries rejected by the lower-bound filter.",
                snap.search.entries_pruned_leaf);
  AppendCounter(out, prefix, "search_entries_pruned_node",
                "Entries pruned with their subtree before any leaf visit.",
                snap.search.entries_pruned_node);
  AppendGauge(out, prefix, "cache_hit_rate",
              "cache_hits / (cache_hits + cache_misses).",
              snap.CacheHitRate());
  AppendGauge(out, prefix, "health",
              "Degradation-ladder position: 0 healthy, 1 degraded, "
              "2 unhealthy.",
              static_cast<double>(snap.health));
  if (!snap.shard_health.empty()) {
    out += "# HELP " + prefix +
           "_shard_health Per-shard ladder position: 0 healthy, 1 degraded, "
           "2 unhealthy.\n";
    out += "# TYPE " + prefix + "_shard_health gauge\n";
    for (size_t i = 0; i < snap.shard_health.size(); ++i)
      out += prefix + "_shard_health{shard=\"" + U64(i) + "\"} " +
             U64(snap.shard_health[i]) + "\n";
  }
  AppendGauge(out, prefix, "store_resident_bytes",
              "Corpus representation bytes decoded/resident in memory.",
              static_cast<double>(snap.store_resident_bytes));
  AppendGauge(out, prefix, "store_mapped_bytes",
              "Corpus representation bytes served from mmap'd cold columns.",
              static_cast<double>(snap.store_mapped_bytes));
  AppendGauge(out, prefix, "store_frame_hits",
              "Cold-tier decode-cache hits (cumulative).",
              static_cast<double>(snap.store_frame_hits));
  AppendGauge(out, prefix, "store_frame_misses",
              "Cold-tier decode-cache misses, i.e. frame decodes "
              "(cumulative).",
              static_cast<double>(snap.store_frame_misses));
  AppendGauge(out, prefix, "search_pruning_power",
              "Live pruning power rho (Eq. 14); lower is better.",
              snap.search.PruningPower());
  AppendGauge(out, prefix, "search_mean_tightness",
              "Mean lower-bound tightness over measured pairs.",
              snap.search.MeanTightness());
  AppendHistogram(out, prefix, "queue_wait_us",
                  "Admission to flush-start wait (microseconds).",
                  metrics.queue_wait_us);
  AppendHistogram(out, prefix, "exec_us",
                  "Wall time of the flush that ran the request "
                  "(microseconds).",
                  metrics.exec_us);
  AppendHistogram(out, prefix, "total_us",
                  "Admission to response resolution (microseconds).",
                  metrics.total_us);
  AppendHistogram(out, prefix, "batch_size",
                  "Requests per flushed micro-batch.", metrics.batch_size);
  AppendHistogram(out, prefix, "queue_depth",
                  "Queue length observed after each admission.",
                  metrics.queue_depth);
  // Windowed tail-latency gauges: live quantiles over roughly the last
  // window instead of the process lifetime. One family, labeled by stage
  // (total = admission->resolution, exec = batch wall time) and quantile.
  // Quantile rows are emitted only when the window saw traffic — an empty
  // window has no percentiles, and 0 would masquerade as a measurement.
  {
    const std::string window_s = U64(snap.window_us / 1'000'000);
    const std::string counts = prefix + "_window_requests";
    out += "# HELP " + counts + " Requests observed in the last " + window_s +
           "s window, per stage.\n";
    out += "# TYPE " + counts + " gauge\n";
    out += counts + "{stage=\"total\"} " + U64(snap.window_total_us.count) +
           "\n";
    out += counts + "{stage=\"exec\"} " + U64(snap.window_exec_us.count) +
           "\n";
    const std::string full = prefix + "_window_latency_us";
    out += "# HELP " + full + " Latency quantiles over the last " + window_s +
           "s (sliding window).\n";
    out += "# TYPE " + full + " gauge\n";
    const auto stage = [&](const char* name, const HistogramSnapshot& h) {
      if (h.count == 0) return;
      const auto q = [&](const char* quantile, double v) {
        out += full + "{stage=\"" + name + "\",quantile=\"" + quantile +
               "\"} " + Double(v) + "\n";
      };
      q("0.5", h.p50);
      q("0.95", h.p95);
      q("0.99", h.p99);
    };
    stage("total", snap.window_total_us);
    stage("exec", snap.window_exec_us);
  }
  return out;
}

bool WritePrometheus(const ServeMetrics& metrics, const std::string& path,
                     const std::string& prefix) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = MetricsToPrometheus(metrics, prefix);
  const bool ok = fwrite(text.data(), 1, text.size(), f) == text.size();
  return fclose(f) == 0 && ok;
}

namespace {

std::string JsonNumberOrNull(double v) {
  return std::isfinite(v) ? Double(v) : "null";
}

void AppendJsonHistogram(std::string& out, const char* name,
                         const HistogramSnapshot& h, bool last) {
  out += std::string("    \"") + name + "\": {\"count\": " + U64(h.count) +
         ", \"mean\": " + JsonNumberOrNull(h.mean) +
         ", \"p50\": " + JsonNumberOrNull(h.p50) +
         ", \"p95\": " + JsonNumberOrNull(h.p95) +
         ", \"p99\": " + JsonNumberOrNull(h.p99) +
         ", \"max\": " + U64(h.max) + "}";
  out += last ? "\n" : ",\n";
}

}  // namespace

std::string MetricsToJson(const ServeMetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {\n";
  const auto counter = [&](const char* name, uint64_t v, bool last = false) {
    out += std::string("    \"") + name + "\": " + U64(v) +
           (last ? "\n" : ",\n");
  };
  counter("admitted", snap.admitted);
  counter("rejected_overloaded", snap.rejected_overloaded);
  counter("rejected_shutdown", snap.rejected_shutdown);
  counter("completed_ok", snap.completed_ok);
  counter("deadline_exceeded", snap.deadline_exceeded);
  counter("degraded", snap.degraded);
  counter("cache_hits", snap.cache_hits);
  counter("cache_misses", snap.cache_misses);
  counter("batches_flushed", snap.batches_flushed);
  counter("degraded_served", snap.degraded_served);
  counter("rejected_unhealthy", snap.rejected_unhealthy);
  counter("flush_failures", snap.flush_failures);
  counter("watchdog_stalls", snap.watchdog_stalls);
  counter("slow_queries", snap.slow_queries);
  counter("shed_early", snap.shed_early);
  counter("budget_cache_shrinks", snap.budget_cache_shrinks);
  counter("budget_degraded", snap.budget_degraded);
  counter("store_resident_bytes", snap.store_resident_bytes);
  counter("store_mapped_bytes", snap.store_mapped_bytes);
  counter("store_frame_hits", snap.store_frame_hits);
  counter("store_frame_misses", snap.store_frame_misses);
  counter("health", snap.health, /*last=*/true);
  out += "  },\n  \"cache_hit_rate\": " + Double(snap.CacheHitRate()) +
         ",\n  \"shard_health\": [";
  for (size_t i = 0; i < snap.shard_health.size(); ++i) {
    if (i != 0) out += ", ";
    out += U64(snap.shard_health[i]);
  }
  out += "],\n  \"search\": {\n";
  counter("queries", snap.search.queries);
  counter("candidates", snap.search.candidates);
  counter("nodes_visited_internal", snap.search.nodes_visited_internal);
  counter("nodes_visited_leaf", snap.search.nodes_visited_leaf);
  counter("nodes_pruned", snap.search.nodes_pruned);
  counter("lb_evaluations", snap.search.lb_evaluations);
  counter("exact_evaluations", snap.search.exact_evaluations);
  counter("entries_pruned_leaf", snap.search.entries_pruned_leaf);
  counter("entries_pruned_node", snap.search.entries_pruned_node);
  out += "    \"pruning_power\": " + Double(snap.search.PruningPower()) +
         ",\n    \"mean_tightness\": " + Double(snap.search.MeanTightness()) +
         "\n  },\n  \"histograms\": {\n";
  AppendJsonHistogram(out, "queue_wait_us", snap.queue_wait_us, false);
  AppendJsonHistogram(out, "exec_us", snap.exec_us, false);
  AppendJsonHistogram(out, "total_us", snap.total_us, false);
  AppendJsonHistogram(out, "batch_size", snap.batch_size, false);
  AppendJsonHistogram(out, "queue_depth", snap.queue_depth, true);
  out += "  },\n  \"window\": {\n    \"window_us\": " + U64(snap.window_us) +
         ",\n";
  AppendJsonHistogram(out, "total_us", snap.window_total_us, false);
  AppendJsonHistogram(out, "exec_us", snap.window_exec_us, true);
  out += "  }\n}\n";
  return out;
}

bool WriteMetricsJson(const ServeMetricsSnapshot& snap,
                      const std::string& path) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = MetricsToJson(snap);
  const bool ok = fwrite(json.data(), 1, json.size(), f) == json.size();
  return fclose(f) == 0 && ok;
}

IngestMetricsSnapshot SnapshotIngestMetrics(const IngestMetrics& metrics) {
  IngestMetricsSnapshot s;
  s.inserts = metrics.inserts.load();
  s.deletes = metrics.deletes.load();
  s.rejected_overloaded = metrics.rejected_overloaded.load();
  s.seals = metrics.seals.load();
  s.compactions = metrics.compactions.load();
  s.checkpoints = metrics.checkpoints.load();
  s.wal_records = metrics.wal_records.load();
  s.wal_bytes = metrics.wal_bytes.load();
  s.wal_replayed = metrics.wal_replayed.load();
  s.rejected_budget = metrics.rejected_budget.load();
  s.budget_forced_compactions = metrics.budget_forced_compactions.load();
  s.memtable_size = metrics.memtable_size.load();
  s.sealed_minors = metrics.sealed_minors.load();
  s.tombstones = metrics.tombstones.load();
  s.visible_series = metrics.visible_series.load();
  s.budget_bytes = metrics.budget_bytes.load();
  return s;
}

Table IngestMetricsToTable(const IngestMetricsSnapshot& snap,
                           const std::string& title) {
  Table t(title);
  t.SetHeader({"Metric", "Value"});
  const auto row = [&](const std::string& name, uint64_t value) {
    t.AddRow({name, std::to_string(value)});
  };
  row("inserts", snap.inserts);
  row("deletes", snap.deletes);
  row("rejected_overloaded", snap.rejected_overloaded);
  row("seals", snap.seals);
  row("compactions", snap.compactions);
  row("checkpoints", snap.checkpoints);
  row("wal_records", snap.wal_records);
  row("wal_bytes", snap.wal_bytes);
  row("wal_replayed", snap.wal_replayed);
  row("rejected_budget", snap.rejected_budget);
  row("budget_forced_compactions", snap.budget_forced_compactions);
  row("memtable_size", snap.memtable_size);
  row("sealed_minors", snap.sealed_minors);
  row("tombstones", snap.tombstones);
  row("visible_series", snap.visible_series);
  row("budget_bytes", snap.budget_bytes);
  return t;
}

std::string IngestMetricsToPrometheus(const IngestMetrics& metrics,
                                      const std::string& prefix) {
  const IngestMetricsSnapshot snap = SnapshotIngestMetrics(metrics);
  std::string out;
  out.reserve(2048);
  AppendCounter(out, prefix, "inserts", "Acknowledged series inserts.",
                snap.inserts);
  AppendCounter(out, prefix, "deletes", "Acknowledged series deletes.",
                snap.deletes);
  AppendCounter(out, prefix, "rejected_overloaded",
                "Inserts refused by ingest admission control.",
                snap.rejected_overloaded);
  AppendCounter(out, prefix, "seals",
                "Memtables frozen into minor generations.", snap.seals);
  AppendCounter(out, prefix, "compactions",
                "Minor+main merges into a fresh main generation.",
                snap.compactions);
  AppendCounter(out, prefix, "checkpoints",
                "Manifest + snapshot + WAL-truncation cycles.",
                snap.checkpoints);
  AppendCounter(out, prefix, "wal_records",
                "Frames appended to the write-ahead log.", snap.wal_records);
  AppendCounter(out, prefix, "wal_bytes",
                "Bytes appended to the write-ahead log.", snap.wal_bytes);
  AppendCounter(out, prefix, "wal_replayed",
                "Log records applied by recovery.", snap.wal_replayed);
  AppendCounter(out, prefix, "rejected_budget",
                "Writes shed because the memory budget stayed "
                "hard-saturated.",
                snap.rejected_budget);
  AppendCounter(out, prefix, "budget_forced_compactions",
                "Seal+compact cycles forced by budget pressure.",
                snap.budget_forced_compactions);
  AppendGauge(out, prefix, "memtable_size",
              "Entries in the live (unsealed) memtable.",
              static_cast<double>(snap.memtable_size));
  AppendGauge(out, prefix, "sealed_minors",
              "Minor generations awaiting compaction.",
              static_cast<double>(snap.sealed_minors));
  AppendGauge(out, prefix, "tombstones",
              "Deleted or expired ids awaiting compaction.",
              static_cast<double>(snap.tombstones));
  AppendGauge(out, prefix, "visible_series",
              "Series a query started now would see.",
              static_cast<double>(snap.visible_series));
  AppendGauge(out, prefix, "budget_bytes",
              "Bytes accounted against the ingest memory budget "
              "(memtable + sealed minors).",
              static_cast<double>(snap.budget_bytes));
  return out;
}

std::string IngestMetricsToJson(const IngestMetricsSnapshot& snap) {
  std::string out = "{\n  \"ingest\": {\n";
  const auto counter = [&](const char* name, uint64_t v, bool last = false) {
    out += std::string("    \"") + name + "\": " + U64(v) +
           (last ? "\n" : ",\n");
  };
  counter("inserts", snap.inserts);
  counter("deletes", snap.deletes);
  counter("rejected_overloaded", snap.rejected_overloaded);
  counter("seals", snap.seals);
  counter("compactions", snap.compactions);
  counter("checkpoints", snap.checkpoints);
  counter("wal_records", snap.wal_records);
  counter("wal_bytes", snap.wal_bytes);
  counter("wal_replayed", snap.wal_replayed);
  counter("rejected_budget", snap.rejected_budget);
  counter("budget_forced_compactions", snap.budget_forced_compactions);
  counter("memtable_size", snap.memtable_size);
  counter("sealed_minors", snap.sealed_minors);
  counter("tombstones", snap.tombstones);
  counter("visible_series", snap.visible_series);
  counter("budget_bytes", snap.budget_bytes, /*last=*/true);
  out += "  }\n}\n";
  return out;
}

std::string BudgetMetricsToPrometheus(const ResourceBudget& root,
                                      const std::string& prefix) {
  const std::vector<ResourceBudget::Snapshot> nodes = root.SnapshotTree();
  std::string out;
  out.reserve(1024);
  const auto family = [&](const std::string& name, const char* type,
                          const char* help,
                          uint64_t (*value)(
                              const ResourceBudget::Snapshot&)) {
    const std::string full = prefix + "_" + name;
    out += "# HELP " + full + " " + help + "\n";
    out += "# TYPE " + full + " " + type + "\n";
    for (const auto& node : nodes)
      out += full + "{component=\"" + node.name + "\"} " + U64(value(node)) +
             "\n";
  };
  family("capacity_bytes", "gauge",
         "Byte capacity of this budget (0 = locally unlimited).",
         [](const ResourceBudget::Snapshot& n) -> uint64_t {
           return n.capacity;
         });
  family("used_bytes", "gauge", "Bytes currently reserved on this budget.",
         [](const ResourceBudget::Snapshot& n) -> uint64_t { return n.used; });
  family("peak_used_bytes", "gauge",
         "High-water mark of reserved bytes since creation.",
         [](const ResourceBudget::Snapshot& n) -> uint64_t {
           return n.peak_used;
         });
  family("pressure", "gauge",
         "Watermark position: 0 none, 1 soft, 2 hard.",
         [](const ResourceBudget::Snapshot& n) -> uint64_t {
           return static_cast<uint64_t>(n.pressure);
         });
  family("rejections_total", "counter",
         "Reservations refused at the hard watermark.",
         [](const ResourceBudget::Snapshot& n) -> uint64_t {
           return n.rejections;
         });
  family("overflows_total", "counter",
         "Forced reservations that pushed usage past capacity.",
         [](const ResourceBudget::Snapshot& n) -> uint64_t {
           return n.overflows;
         });
  return out;
}

Table BudgetMetricsToTable(const ResourceBudget& root,
                           const std::string& title) {
  Table t(title);
  t.SetHeader({"Budget", "Used", "Capacity", "Peak", "Pressure", "Rejections",
               "Overflows"});
  for (const auto& node : root.SnapshotTree()) {
    t.AddRow({node.name, U64(node.used), U64(node.capacity),
              U64(node.peak_used), BudgetPressureName(node.pressure),
              U64(node.rejections), U64(node.overflows)});
  }
  return t;
}

}  // namespace sapla
