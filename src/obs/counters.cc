#include "obs/counters.h"

namespace sapla {

const char* CascadeStageName(CascadeStage stage) {
  switch (stage) {
    case CascadeStage::kNone:
      return "none";
    case CascadeStage::kNodePrune:
      return "node_prune";
    case CascadeStage::kLeafFilter:
      return "leaf_filter";
    case CascadeStage::kExact:
      return "exact";
  }
  return "unknown";
}

}  // namespace sapla
