#ifndef SAPLA_OBS_EXPLAIN_H_
#define SAPLA_OBS_EXPLAIN_H_

// Per-request explain records and the tail-sampled slow-query log.
//
// A QueryExplain is the structured answer to "where did this one request's
// time and pruning go": per-part (shard / generation / memtable) timings
// and SearchCounters, per-stage (scatter, merge, ...) timings, the ingest
// epoch the query saw, and the whole-request counters. Every SearchIndex
// can fill one via KnnExplain (search/search_index.h); ShardedIndex and
// IngestController fill the full breakdown.
//
// Invariant carried by the sharded/ingest paths and asserted in tests: the
// per-part counters in `parts` sum exactly to `counters` — the explain is
// the request's SearchCounters, attributed, not a second measurement.
//
// The slow-query log is the tail-sampling consumer: QueryService builds a
// SlowQueryRecord for every request that crosses a latency or counter
// threshold (serve/service.h options) and appends its JSON rendering to a
// bounded in-memory ring. docs/OBSERVABILITY.md documents the record
// schema; CI validates a live record with `python3 -m json.tool`.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/counters.h"

namespace sapla {
namespace obs {

/// One named stage of a request's execution (e.g. "scatter", "merge",
/// "memtable") and its wall time.
struct StageExplain {
  std::string stage;
  uint64_t dur_us = 0;
};

/// One part of the corpus the request touched: a shard of a ShardedIndex,
/// or a generation (main / minorN / memtable) of an IngestController.
struct ShardExplain {
  std::string part;
  /// ShardHealth as an int (0 healthy, 1 degraded = lower-bound-only,
  /// 2 unhealthy = excluded from the scatter).
  int health = 0;
  uint64_t dur_us = 0;
  /// Neighbors this part contributed before the merge truncated to k.
  size_t results = 0;
  SearchCounters counters;
};

/// "healthy" / "degraded" / "unhealthy" for ShardExplain::health.
const char* ExplainHealthName(int health);

/// \brief Per-stage / per-part breakdown of one executed query.
struct QueryExplain {
  /// Trace id of the request (0 when unsampled); joins the record to its
  /// span tree in a Chrome trace export.
  uint64_t trace_id = 0;
  /// Wall time inside the index (excludes queueing).
  uint64_t total_us = 0;
  /// Ingest epoch sequence the query pinned; 0 for a static corpus.
  uint64_t epoch_seq = 0;
  bool approximate = false;
  /// Whole-request counters. Equals the sum over `parts` (asserted in
  /// tests/explain_test.cc) wherever the index fills the breakdown.
  SearchCounters counters;
  std::vector<StageExplain> stages;
  std::vector<ShardExplain> parts;
};

/// JSON object for one QueryExplain (embedded in slow-query records and
/// printed by `sapla_cli explain --json`).
std::string QueryExplainToJson(const QueryExplain& explain);

/// \brief One slow-query log entry: request identity, outcome and the
/// explain breakdown.
struct SlowQueryRecord {
  uint64_t trace_id = 0;
  std::string op;       ///< "knn" | "range"
  size_t k = 0;
  double radius = 0.0;
  std::string status;   ///< status code name, e.g. "ok"
  bool cache_hit = false;
  bool approximate = false;
  /// The request was answered by a degradation path (inline lower-bound
  /// answer or deadline-expired approximate answer).
  bool degraded = false;
  /// Attempt annotations propagated by the retry layer (TraceContext
  /// flags): this submission was a retry / a speculative hedge duplicate.
  bool retry = false;
  bool hedge = false;
  uint64_t queue_us = 0;
  uint64_t exec_us = 0;
  uint64_t total_us = 0;
  QueryExplain explain;
};

/// One JSON object per record (docs/OBSERVABILITY.md has the schema).
std::string SlowQueryRecordToJson(const SlowQueryRecord& record);

/// \brief Bounded, thread-safe ring of rendered slow-query records.
///
/// Oldest records are evicted once `capacity` is reached;
/// `total_logged()` keeps counting so eviction is visible. Records are
/// stored rendered (JSON strings) — the log never retains pointers into
/// request state.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 128);

  void Add(std::string json_record);

  /// Oldest-first copy of the retained records.
  std::vector<std::string> Records() const;

  /// Records ever added (including evicted ones).
  uint64_t total_logged() const;

  size_t capacity() const { return capacity_; }

  /// Writes the retained records as one JSON array (staged + renamed, like
  /// WriteChromeTrace). Returns false on I/O failure.
  bool WriteJsonArray(const std::string& path) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::string> records_;
  uint64_t total_ = 0;
};

}  // namespace obs
}  // namespace sapla

#endif  // SAPLA_OBS_EXPLAIN_H_
