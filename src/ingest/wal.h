#ifndef SAPLA_INGEST_WAL_H_
#define SAPLA_INGEST_WAL_H_

// Write-ahead log for the ingest subsystem (src/ingest/ingest_controller.h).
//
// Every acknowledged mutation (insert or delete) is framed and appended to
// one log file BEFORE the in-memory state changes, so a crash at any moment
// loses at most the single un-acknowledged record being written. The frame
// format follows the v3 persistence discipline (ts/io.h): fixed magic
// header, then records framed as
//
//   u32 payload_length | u32 crc32c(payload) | payload
//
// with the payload encoded by the little-endian binio helpers. Replay walks
// the frames sequentially and stops at the first structurally bad frame —
// short length, CRC mismatch, or a payload the bounds-checked Reader cannot
// parse. A torn tail (the crash-interrupted final append) is therefore
// indistinguishable from end-of-log and never poisons the records before
// it; Replay reports how many bytes were dropped so callers can surface it.
//
// Records carry their original mutation sequence number and, for inserts,
// the ABSOLUTE TTL expiry sequence (0 = no TTL). Absolute expiries make
// replay a pure function of the log contents: visibility after recovery
// does not depend on when the records are re-applied (docs/INGEST.md).
//
// Durability: Append writes the frame with a single fwrite and fflushes it,
// so the record is in the OS page cache when the call returns; Sync() adds
// an fsync for power-loss durability. The controller calls Append per
// mutation and Sync at seal/compact/checkpoint boundaries — the chaos
// harness only simulates process kills, for which fflush suffices.
//
// Fault points (util/fault.h): "ingest/wal_open", "ingest/wal_append",
// "ingest/wal_full" (disk-full refusal before any byte is written; pair
// with code `exhausted`), and "ingest/wal_torn" (writes half the frame,
// then the append rolls the file back to the last good frame and fails —
// exercising the ENOSPC/short-write recovery path). Append also runs a
// statvfs free-space preflight (PreflightDiskSpace in ts/io.h), so a truly
// full disk is refused cleanly as kResourceExhausted with the log intact.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace sapla {

/// \brief One logged mutation.
struct WalRecord {
  enum class Kind : uint32_t { kInsert = 1, kDelete = 2 };

  Kind kind = Kind::kInsert;
  /// Mutation sequence number assigned when the operation was first
  /// acknowledged; preserved verbatim across checkpoint rewrites so TTL
  /// visibility replays exactly.
  uint64_t seq = 0;
  /// Global series id.
  uint64_t id = 0;
  /// Insert only: class label of the arriving series.
  int64_t label = 0;
  /// Insert only: absolute expiry sequence (entry visible while the
  /// epoch sequence is <= expiry_seq); 0 = never expires.
  uint64_t expiry_seq = 0;
  /// Insert only: the raw series values.
  std::vector<double> values;

  bool operator==(const WalRecord& o) const {
    return kind == o.kind && seq == o.seq && id == o.id && label == o.label &&
           expiry_seq == o.expiry_seq && values == o.values;
  }
};

/// Result of replaying a log file.
struct WalReplay {
  std::vector<WalRecord> records;
  /// Bytes discarded after the last good frame (torn tail / corruption);
  /// 0 for a clean log.
  uint64_t dropped_bytes = 0;
};

/// \brief Append-side handle on one log file.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens `path` for appending, writing the magic header when the file is
  /// missing or empty. Any previously opened file is closed first.
  Status Open(const std::string& path);

  /// Frames and appends one record, then fflushes. The record is durable
  /// against process death (not power loss — see Sync) when this returns
  /// OK. Fails closed: on any error the caller must treat the mutation as
  /// not logged and surface the status.
  Status Append(const WalRecord& record);

  /// fsyncs the underlying file descriptor.
  Status Sync();

  /// Closes the file (idempotent). Open() may be called again afterwards.
  void Close();

  bool is_open() const { return file_ != nullptr; }
  /// Total bytes appended through this handle (frames only, not the
  /// header); feeds the sapla_ingest_wal_bytes_total counter.
  uint64_t bytes_appended() const { return bytes_appended_; }

  /// Encodes one record as a frame (length + CRC + payload) — exposed so
  /// Rewrite and the tests share the exact append encoding.
  static std::string EncodeFrame(const WalRecord& record);

  /// Replays `path`: header check, then sequential frames until the first
  /// bad one. A missing file replays as empty (a fresh directory is not an
  /// error); an unreadable file or bad header is.
  static Result<WalReplay> Replay(const std::string& path);

  /// Atomically replaces the log at `path` with exactly `records`
  /// (checkpoint truncation). Goes through AtomicWriteFile, so a crash
  /// leaves either the old or the new log, never a mix.
  static Status Rewrite(const std::string& path,
                        const std::vector<WalRecord>& records);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_appended_ = 0;
  /// File size after the last fully flushed frame; a failed append
  /// truncates back to this so the on-disk log never ends in a torn frame.
  uint64_t good_size_ = 0;
};

}  // namespace sapla

#endif  // SAPLA_INGEST_WAL_H_
