#include "ingest/ingest_controller.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <queue>
#include <utility>

#include "distance/kernels.h"
#include "geom/line_fit.h"
#include "obs/trace.h"
#include "ts/io.h"
#include "util/binio.h"
#include "util/crc32c.h"
#include "util/fault.h"
#include "util/parallel.h"

namespace sapla {
namespace {

// splitmix64 finalizer (same as sharded_index.cc): folds generation store
// ids and the publication counter into one epoch identity.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::atomic<uint64_t> g_instance_counter{0x1A6E57u};

uint64_t NextInstanceId() { return Mix64(g_instance_counter.fetch_add(1)); }

// Max-heap of the k best (distance, id) pairs with the repo-wide
// lexicographic (distance, id) tie-break — the same semantics as the TopK
// in search/knn.cc, reproduced here for the memtable scan and the merge.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  void Offer(double dist, size_t id) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.emplace(dist, id);
    } else if (std::make_pair(dist, id) < heap_.top()) {
      heap_.pop();
      heap_.emplace(dist, id);
    }
  }

  double Bound() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.top().first;
  }

  std::vector<std::pair<double, size_t>> Sorted() const {
    std::vector<std::pair<double, size_t>> v(heap_.size());
    auto copy = heap_;
    for (size_t i = v.size(); i-- > 0;) {
      v[i] = copy.top();
      copy.pop();
    }
    return v;
  }

 private:
  size_t k_;
  std::priority_queue<std::pair<double, size_t>> heap_;
};

bool Tombstoned(const std::vector<uint64_t>& tombstones, uint64_t id) {
  return std::binary_search(tombstones.begin(), tombstones.end(), id);
}

// Manifest framing: magic + version + u32 crc32c(body) + body.
constexpr char kManifestMagic[] = "SAPLAMAN";
constexpr size_t kManifestMagicLen = 8;
constexpr uint32_t kManifestVersion = 1;

}  // namespace

IngestController::IngestController(Method method, size_t m, IndexKind kind,
                                   size_t series_length,
                                   const IngestOptions& options)
    : method_(method),
      m_(m),
      kind_(kind),
      series_length_(series_length),
      options_(options),
      instance_id_(NextInstanceId()) {
  // The multi-generation merge is a partition of the visible set, so every
  // generation must answer exactly — force the sound DBCH regime just like
  // ShardedIndex, and the columnar layout (RestoreFromStore needs it).
  options_.index.dbch_sound_bounds = true;
  options_.index.legacy_aos_corpus = false;
  reducer_ = MakeReducer(method_);
  if (options_.streaming_reduction && method_ == Method::kSapla) {
    streamer_ =
        std::make_unique<StreamingSapla>(SegmentsForBudget(method_, m_));
  } else {
    options_.streaming_reduction = false;
  }
  memtable_ = std::make_shared<Memtable>();
  std::lock_guard<std::mutex> lock(mu_);
  PublishLocked();
}

IngestController::~IngestController() {
  // Everything metered here dies with the controller; hand the bytes back
  // so the shared budget's other consumers see the room.
  if (options_.memory_budget && budget_accounted_ > 0)
    options_.memory_budget->Release(budget_accounted_);
}

std::string IngestController::WalPath() const {
  return options_.durable_dir + "/wal.log";
}

std::string IngestController::ManifestPath() const {
  return options_.durable_dir + "/manifest.bin";
}

std::string IngestController::SnapshotPrefix() const {
  return options_.durable_dir + "/main";
}

std::shared_ptr<const IngestController::Epoch> IngestController::PinEpoch()
    const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

void IngestController::PublishLocked() {
  auto e = std::make_shared<Epoch>();
  e->main = main_;
  e->minors = minors_;
  e->memtable = memtable_;

  // Tombstones = explicit deletes of sealed entries + everything whose TTL
  // has passed. Expiry is fixed per epoch (the sequence only advances on
  // mutations), so the set is computed once at publication, not per query.
  std::vector<uint64_t> tomb(deletes_.begin(), deletes_.end());
  for (const auto& [id, expiry] : ttl_)
    if (seq_ > expiry) tomb.push_back(id);
  std::sort(tomb.begin(), tomb.end());
  tomb.erase(std::unique(tomb.begin(), tomb.end()), tomb.end());
  e->tombstones = std::move(tomb);

  size_t stored = memtable_->entries.size() + (main_ ? main_->ids.size() : 0);
  for (const auto& minor : minors_) stored += minor->ids.size();
  e->visible = stored - e->tombstones.size();
  e->seq = seq_;

  ++publishes_;
  uint64_t h = Mix64(instance_id_ ^ publishes_);
  h = Mix64(h ^ seq_);
  if (main_) h = Mix64(h ^ main_->index->corpus_id());
  for (const auto& minor : minors_) h = Mix64(h ^ minor->index->corpus_id());
  e->corpus_id = h;

  metrics_.memtable_size.store(memtable_->entries.size(),
                               std::memory_order_relaxed);
  metrics_.sealed_minors.store(minors_.size(), std::memory_order_relaxed);
  metrics_.tombstones.store(e->tombstones.size(), std::memory_order_relaxed);
  metrics_.visible_series.store(e->visible, std::memory_order_relaxed);
  UpdateBudgetLocked();

  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch_ = std::move(e);
}

void IngestController::UpdateBudgetLocked() {
  if (!options_.memory_budget) return;
  // Memtable: raw values + entry bookkeeping + the reduced store; minors
  // carry their seal-time figure. The main generation is deliberately
  // unmetered — compaction moving bytes into it is what FREES budget,
  // which is exactly the graded response AdmitInsertLocked forces.
  size_t bytes = memtable_->entries.size() *
                     (series_length_ * sizeof(double) + sizeof(MemEntry)) +
                 memtable_->store.footprint().resident_bytes;
  for (const auto& minor : minors_) bytes += minor->budget_bytes;
  if (bytes > budget_accounted_)
    options_.memory_budget->ForceReserve(bytes - budget_accounted_);
  else if (bytes < budget_accounted_)
    options_.memory_budget->Release(budget_accounted_ - bytes);
  budget_accounted_ = bytes;
  metrics_.budget_bytes.store(bytes, std::memory_order_relaxed);
}

Status IngestController::AdmitInsertLocked() {
  if (!options_.memory_budget) return Status::OK();
  BudgetPressure pressure = options_.memory_budget->pressure_up();
  if (pressure != BudgetPressure::kNone && seq_ != last_relief_seq_) {
    // Graded response, step one: move what ingest owns out of the metered
    // tiers — seal the memtable, compact the minors into the main. Soft
    // pressure only bothers when there is real freeable mass (a half-full
    // memtable or any sealed minor); hard pressure frees whatever exists.
    // At most one attempt per mutation sequence, so a burst of rejected
    // inserts cannot pay a compaction each.
    const bool hard = pressure == BudgetPressure::kHard;
    const bool freeable =
        !minors_.empty() ||
        (hard ? !memtable_->entries.empty()
              : memtable_->entries.size() >=
                    std::max<size_t>(1, options_.memtable_max / 2));
    if (freeable) {
      last_relief_seq_ = seq_;
      const Status seal_st = SealLocked();
      (void)seal_st;
      const Status compact_st = CompactLocked();
      (void)compact_st;
      metrics_.budget_forced_compactions.fetch_add(1,
                                                   std::memory_order_relaxed);
      pressure = options_.memory_budget->pressure_up();
    }
  }
  if (pressure == BudgetPressure::kHard) {
    // Step two: shed the write. The caller retries after pressure lifts.
    metrics_.rejected_budget.fetch_add(1, std::memory_order_relaxed);
    return Status::Overloaded(
        "ingest: memory budget exhausted; shedding writes");
  }
  return Status::OK();
}

void IngestController::ReduceIntoLocked(const std::vector<double>& values,
                                        RepresentationStore* store) {
  if (streamer_) {
    streamer_->Reset();
    for (double v : values) streamer_->Append(v);
    store->Append(streamer_->Snapshot());
  } else {
    reducer_->ReduceInto(values, m_, store);
  }
}

bool IngestController::VisibleLocked(uint64_t id) const {
  if (live_.find(id) == live_.end()) return false;
  const auto it = ttl_.find(id);
  return it == ttl_.end() || seq_ <= it->second;
}

void IngestController::ApplyInsertLocked(MemEntry entry) {
  auto next = std::make_shared<Memtable>(*memtable_);
  ReduceIntoLocked(entry.values, &next->store);
  if (entry.expiry_seq != 0) ttl_[entry.id] = entry.expiry_seq;
  live_[entry.id] = Loc::kMemtable;
  next->entries.push_back(std::move(entry));
  memtable_ = std::move(next);
  PublishLocked();
  if (options_.memtable_max != 0 &&
      memtable_->entries.size() >= options_.memtable_max) {
    // Auto-seal/compact are best-effort: the insert is already acknowledged
    // and consistent; a failed (fault-injected) background step just leaves
    // the memtable/minors to be retried at the next trigger.
    const Status seal_st = SealLocked();
    (void)seal_st;
  }
  if (options_.compact_min_minors != 0 &&
      minors_.size() >= options_.compact_min_minors) {
    const Status compact_st = CompactLocked();
    (void)compact_st;
  }
}

Result<uint64_t> IngestController::Insert(const std::vector<double>& values,
                                          int label,
                                          uint64_t ttl_mutations) {
  SAPLA_TRACE_SPAN("ingest/insert");
  if (series_length_ < 2)
    return Status::InvalidArgument("ingest: series length must be >= 2");
  if (values.size() != series_length_)
    return Status::InvalidArgument(
        "ingest: series length " + std::to_string(values.size()) +
        " does not match the controller's " + std::to_string(series_length_));
  for (double v : values) {
    if (!std::isfinite(v))
      return Status::InvalidArgument(
          "ingest: series contains non-finite values");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_minors != 0 && minors_.size() >= options_.max_minors) {
    metrics_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
    return Status::Overloaded(
        "ingest: too many sealed minors awaiting compaction");
  }
  SAPLA_RETURN_NOT_OK(AdmitInsertLocked());

  MemEntry entry;
  entry.id = next_id_;
  entry.seq = seq_;
  entry.expiry_seq = ttl_mutations == 0 ? 0 : seq_ + ttl_mutations;
  entry.label = label;
  entry.values = values;

  if (!options_.durable_dir.empty()) {
    // A durable controller never acknowledges what it cannot log: if the
    // log is closed (Recover() not called, or a faulted checkpoint could
    // not reopen it) the mutation is refused rather than silently lost.
    if (!wal_.is_open())
      return Status::Unavailable("ingest: write-ahead log is not open");
    WalRecord rec;
    rec.kind = WalRecord::Kind::kInsert;
    rec.seq = entry.seq;
    rec.id = entry.id;
    rec.label = entry.label;
    rec.expiry_seq = entry.expiry_seq;
    rec.values = entry.values;
    const uint64_t before = wal_.bytes_appended();
    const Status st = wal_.Append(rec);
    // Fail closed: an unlogged mutation is never applied, so the acked
    // history and the log stay exactly in sync.
    if (!st.ok()) return st;
    metrics_.wal_records.fetch_add(1, std::memory_order_relaxed);
    metrics_.wal_bytes.fetch_add(wal_.bytes_appended() - before,
                                 std::memory_order_relaxed);
  }

  const uint64_t id = entry.id;
  ++next_id_;
  ++seq_;
  ApplyInsertLocked(std::move(entry));
  metrics_.inserts.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void IngestController::ApplyDeleteLocked(uint64_t id, bool in_memtable) {
  if (in_memtable) {
    // Rewrite the memtable without the entry. The store round-trips each
    // surviving reduction losslessly (ToRepresentation -> Append), so no
    // series is re-reduced and streaming-produced segments are preserved.
    auto next = std::make_shared<Memtable>();
    next->entries.reserve(memtable_->entries.size() - 1);
    for (size_t i = 0; i < memtable_->entries.size(); ++i) {
      if (memtable_->entries[i].id == id) continue;
      next->entries.push_back(memtable_->entries[i]);
      next->store.Append(memtable_->store.ToRepresentation(i));
    }
    memtable_ = std::move(next);
  } else {
    deletes_.insert(id);
  }
  live_.erase(id);
  ttl_.erase(id);
  PublishLocked();
}

Status IngestController::Delete(uint64_t id) {
  SAPLA_TRACE_SPAN("ingest/delete");
  std::lock_guard<std::mutex> lock(mu_);
  if (!VisibleLocked(id))
    return Status::NotFound("ingest: id " + std::to_string(id) +
                            " is not visible");
  const bool in_memtable = live_.at(id) == Loc::kMemtable;

  if (!options_.durable_dir.empty()) {
    if (!wal_.is_open())
      return Status::Unavailable("ingest: write-ahead log is not open");
    WalRecord rec;
    rec.kind = WalRecord::Kind::kDelete;
    rec.seq = seq_;
    rec.id = id;
    const uint64_t before = wal_.bytes_appended();
    const Status st = wal_.Append(rec);
    if (!st.ok()) return st;
    metrics_.wal_records.fetch_add(1, std::memory_order_relaxed);
    metrics_.wal_bytes.fetch_add(wal_.bytes_appended() - before,
                                 std::memory_order_relaxed);
  }

  ++seq_;
  ApplyDeleteLocked(id, in_memtable);
  metrics_.deletes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status IngestController::SealLocked() {
  if (memtable_->entries.empty()) return Status::OK();
  SAPLA_FAULT_POINT("ingest/seal");

  auto minor = std::make_shared<Minor>();
  minor->dataset.name = "ingest-minor";
  minor->dataset.series.reserve(memtable_->entries.size());
  minor->ids.reserve(memtable_->entries.size());
  for (const MemEntry& e : memtable_->entries) {
    minor->dataset.series.emplace_back(e.values, e.label);
    minor->ids.push_back(e.id);
  }
  minor->index =
      std::make_unique<SimilarityIndex>(method_, m_, kind_, options_.index);
  // Adopt the memtable's already-reduced store: no re-reduction, and the
  // tree is built by the same serial id-order insertion a fresh Build uses.
  const Status st = minor->index->RestoreFromStore(
      minor->dataset, RepresentationStore(memtable_->store));
  if (!st.ok()) return st;

  minor->budget_bytes =
      minor->ids.size() * (series_length_ * sizeof(double) +
                           sizeof(TimeSeries) + sizeof(uint64_t)) +
      minor->index->footprint().resident_bytes;

  for (const MemEntry& e : memtable_->entries) live_[e.id] = Loc::kSealed;
  minors_.push_back(std::move(minor));
  memtable_ = std::make_shared<Memtable>();
  metrics_.seals.fetch_add(1, std::memory_order_relaxed);
  PublishLocked();
  return Status::OK();
}

Status IngestController::Seal() {
  SAPLA_TRACE_SPAN("ingest/seal");
  std::lock_guard<std::mutex> lock(mu_);
  return SealLocked();
}

Status IngestController::CompactLocked() {
  // No-op when nothing sealed needs merging or dropping (memtable-only
  // expiries stay tombstoned until their entries are sealed + compacted).
  bool sealed_expired = false;
  for (const auto& [id, expiry] : ttl_) {
    const auto it = live_.find(id);
    if (it != live_.end() && it->second == Loc::kSealed && seq_ > expiry) {
      sealed_expired = true;
      break;
    }
  }
  if (minors_.empty() && deletes_.empty() && !sealed_expired)
    return Status::OK();
  SAPLA_FAULT_POINT("ingest/compact");

  const auto expiry_of = [&](uint64_t id) -> uint64_t {
    const auto it = ttl_.find(id);
    return it == ttl_.end() ? 0 : it->second;
  };
  const auto keep = [&](uint64_t id, uint64_t expiry) {
    return deletes_.find(id) == deletes_.end() &&
           (expiry == 0 || seq_ <= expiry);
  };

  // Survivors, ascending by global id: ids are assigned monotonically and
  // compaction absorbs every sealed generation, so main's ids all precede
  // the minors', and the minors' precede each other in creation order.
  struct Row {
    uint64_t id;
    uint64_t expiry;
    const TimeSeries* ts;
  };
  std::vector<Row> rows;
  std::vector<uint64_t> dropped;
  if (main_) {
    for (size_t i = 0; i < main_->ids.size(); ++i) {
      if (keep(main_->ids[i], main_->expiry[i]))
        rows.push_back({main_->ids[i], main_->expiry[i],
                        &main_->dataset.series[i]});
      else
        dropped.push_back(main_->ids[i]);
    }
  }
  for (const auto& minor : minors_) {
    for (size_t i = 0; i < minor->ids.size(); ++i) {
      const uint64_t id = minor->ids[i];
      const uint64_t expiry = expiry_of(id);
      if (keep(id, expiry))
        rows.push_back({id, expiry, &minor->dataset.series[i]});
      else
        dropped.push_back(id);
    }
  }
  SAPLA_DCHECK(std::is_sorted(
      rows.begin(), rows.end(),
      [](const Row& a, const Row& b) { return a.id < b.id; }));

  std::shared_ptr<const MainGen> next_main;
  if (!rows.empty()) {
    auto gen = std::make_shared<MainGen>();
    gen->dataset.name = "ingest-main";
    gen->dataset.series.reserve(rows.size());
    gen->ids.reserve(rows.size());
    gen->expiry.reserve(rows.size());
    for (const Row& r : rows) {
      gen->dataset.series.push_back(*r.ts);
      gen->ids.push_back(r.id);
      gen->expiry.push_back(r.expiry);
    }
    ShardedIndex::Options so;
    so.num_shards = options_.num_shards;
    so.index = options_.index;
    gen->index = std::make_unique<ShardedIndex>(method_, m_, kind_, so);
    const Status st = gen->index->Build(gen->dataset);
    if (!st.ok()) return st;
    next_main = std::move(gen);
  }

  // Only publish-side state changes after the fallible build succeeded.
  main_ = std::move(next_main);
  for (uint64_t id : dropped) {
    live_.erase(id);
    ttl_.erase(id);
  }
  deletes_.clear();
  minors_.clear();
  metrics_.compactions.fetch_add(1, std::memory_order_relaxed);
  PublishLocked();
  return Status::OK();
}

Status IngestController::Compact() {
  SAPLA_TRACE_SPAN("ingest/compact");
  std::lock_guard<std::mutex> lock(mu_);
  return CompactLocked();
}

Status IngestController::WriteManifestLocked() const {
  std::string body;
  binio::PutU64(&body, seq_);
  binio::PutU64(&body, next_id_);
  binio::PutU64(&body, series_length_);
  binio::PutU64(&body, main_ ? main_->ids.size() : 0);
  if (main_) {
    for (size_t i = 0; i < main_->ids.size(); ++i) {
      binio::PutU64(&body, main_->ids[i]);
      binio::PutI64(&body, main_->dataset.series[i].label);
      binio::PutU64(&body, main_->expiry[i]);
      for (double v : main_->dataset.series[i].values)
        binio::PutF64(&body, v);
    }
  }
  std::string out(kManifestMagic, kManifestMagicLen);
  binio::PutU32(&out, kManifestVersion);
  binio::PutU32(&out, Crc32c(body));
  out.append(body);
  return AtomicWriteFile(ManifestPath(), out);
}

Status IngestController::LoadManifest(const std::string& path,
                                      std::vector<MemEntry>* out,
                                      uint64_t* seq,
                                      uint64_t* next_id) const {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::OK();  // no checkpoint yet
    return Status::IOError("ingest: cannot open manifest '" + path +
                           "': " + std::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, got);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err)
    return Status::IOError("ingest: cannot read manifest '" + path + "'");

  if (data.size() < kManifestMagicLen + 8 ||
      data.compare(0, kManifestMagicLen, kManifestMagic, kManifestMagicLen) !=
          0)
    return Status::InvalidArgument("ingest: bad manifest magic in '" + path +
                                   "'");
  binio::Reader hdr(data);
  hdr.ReadBytes(kManifestMagicLen);
  const uint32_t version = hdr.ReadU32();
  const uint32_t crc = hdr.ReadU32();
  if (version != kManifestVersion)
    return Status::InvalidArgument("ingest: unsupported manifest version " +
                                   std::to_string(version));
  const std::string body = data.substr(kManifestMagicLen + 8);
  if (Crc32c(body) != crc)
    return Status::InvalidArgument("ingest: manifest checksum mismatch in '" +
                                   path + "'");

  binio::Reader r(body);
  *seq = r.ReadU64();
  *next_id = r.ReadU64();
  const uint64_t length = r.ReadU64();
  const uint64_t count = r.ReadU64();
  if (!r.ok() || length != series_length_)
    return Status::InvalidArgument(
        "ingest: manifest series length does not match the controller");
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MemEntry e;
    e.id = r.ReadU64();
    e.label = static_cast<int>(r.ReadI64());
    e.expiry_seq = r.ReadU64();
    e.values.resize(length);
    for (uint64_t j = 0; j < length; ++j) e.values[j] = r.ReadF64();
    if (!r.ok())
      return Status::InvalidArgument("ingest: truncated manifest body in '" +
                                     path + "'");
    out->push_back(std::move(e));
  }
  if (r.remaining() != 0)
    return Status::InvalidArgument("ingest: trailing manifest bytes in '" +
                                   path + "'");
  return Status::OK();
}

Status IngestController::Recover() {
  SAPLA_TRACE_SPAN("ingest/recover");
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.durable_dir.empty()) return Status::OK();
  SAPLA_FAULT_POINT("ingest/recover");

  // 1. Manifest -> main generation (warm from snapshots when they match,
  // cold rebuild otherwise).
  std::vector<MemEntry> rows;
  uint64_t manifest_seq = 0, manifest_next = 0;
  const Status mst =
      LoadManifest(ManifestPath(), &rows, &manifest_seq, &manifest_next);
  if (!mst.ok()) return mst;
  seq_ = manifest_seq;
  next_id_ = manifest_next;
  if (!rows.empty()) {
    auto gen = std::make_shared<MainGen>();
    gen->dataset.name = "ingest-main";
    gen->dataset.series.reserve(rows.size());
    for (const MemEntry& e : rows) {
      gen->dataset.series.emplace_back(e.values, e.label);
      gen->ids.push_back(e.id);
      gen->expiry.push_back(e.expiry_seq);
    }
    ShardedIndex::Options so;
    so.num_shards = options_.num_shards;
    so.index = options_.index;
    gen->index = std::make_unique<ShardedIndex>(method_, m_, kind_, so);
    Status st = gen->index->Restore(gen->dataset, SnapshotPrefix());
    if (!st.ok()) {
      // Stale or missing snapshots (e.g. a kill between snapshot save and
      // manifest write, or a changed shard count): rebuild cold.
      gen->index = std::make_unique<ShardedIndex>(method_, m_, kind_, so);
      st = gen->index->Build(gen->dataset);
      if (!st.ok()) return st;
    }
    main_ = std::move(gen);
    for (const MemEntry& e : rows) {
      live_[e.id] = Loc::kSealed;
      if (e.expiry_seq != 0) ttl_[e.id] = e.expiry_seq;
    }
  }

  // 2. WAL replay. Records already covered by the manifest are skipped by
  // id; deletes of ids that never made it (or were compacted away) are
  // ignored — replay is idempotent.
  auto replayed = WriteAheadLog::Replay(WalPath());
  if (!replayed.ok()) return replayed.status();
  recovering_ = true;
  uint64_t applied = 0;
  for (const WalRecord& rec : replayed.ValueOrDie().records) {
    if (rec.kind == WalRecord::Kind::kInsert) {
      if (rec.values.size() != series_length_) {
        recovering_ = false;
        return Status::InvalidArgument(
            "ingest: WAL insert series length does not match the controller");
      }
      next_id_ = std::max(next_id_, rec.id + 1);
      if (live_.find(rec.id) != live_.end()) {
        seq_ = std::max(seq_, rec.seq + 1);
        continue;  // pre-checkpoint record, already in the manifest
      }
      seq_ = std::max(seq_, rec.seq);
      MemEntry entry;
      entry.id = rec.id;
      entry.seq = rec.seq;
      entry.expiry_seq = rec.expiry_seq;
      entry.label = static_cast<int>(rec.label);
      entry.values = rec.values;
      seq_ = std::max(seq_, rec.seq + 1);
      ApplyInsertLocked(std::move(entry));
      ++applied;
    } else {
      if (live_.find(rec.id) == live_.end()) {
        seq_ = std::max(seq_, rec.seq + 1);
        continue;  // deleted target never applied or already compacted
      }
      const bool in_memtable = live_.at(rec.id) == Loc::kMemtable;
      seq_ = std::max(seq_, rec.seq + 1);
      ApplyDeleteLocked(rec.id, in_memtable);
      ++applied;
    }
  }
  recovering_ = false;
  metrics_.wal_replayed.fetch_add(applied, std::memory_order_relaxed);

  // 3. A torn tail must not precede future appends — truncate to the good
  // frames before reopening for append.
  if (replayed.ValueOrDie().dropped_bytes > 0) {
    const Status st =
        WriteAheadLog::Rewrite(WalPath(), replayed.ValueOrDie().records);
    if (!st.ok()) return st;
  }
  const Status wst = wal_.Open(WalPath());
  if (!wst.ok()) return wst;
  PublishLocked();
  return Status::OK();
}

Status IngestController::Checkpoint() {
  SAPLA_TRACE_SPAN("ingest/checkpoint");
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.durable_dir.empty())
    return Status::InvalidArgument("ingest: checkpoint requires durable_dir");
  // Compaction first: afterwards the manifest's main generation is exactly
  // the visible set minus the memtable (no minors, no tombstones).
  Status st = CompactLocked();
  if (!st.ok()) return st;
  SAPLA_FAULT_POINT("ingest/checkpoint");
  if (main_) {
    st = main_->index->SaveSnapshots(SnapshotPrefix(),
                                     options_.snapshot_codec);
    if (!st.ok()) return st;
  }
  st = WriteManifestLocked();
  if (!st.ok()) return st;

  // Truncate the WAL to the memtable's records, original sequence numbers
  // preserved. Crash-safe at every point: until the atomic rewrite lands,
  // recovery sees the new manifest + the full old log, whose replay is
  // idempotent by id and order-preserving.
  std::vector<WalRecord> tail;
  tail.reserve(memtable_->entries.size());
  for (const MemEntry& e : memtable_->entries) {
    WalRecord rec;
    rec.kind = WalRecord::Kind::kInsert;
    rec.seq = e.seq;
    rec.id = e.id;
    rec.label = e.label;
    rec.expiry_seq = e.expiry_seq;
    rec.values = e.values;
    tail.push_back(std::move(rec));
  }
  wal_.Close();
  const Status rewrite = WriteAheadLog::Rewrite(WalPath(), tail);
  const Status reopen = wal_.Open(WalPath());
  if (!rewrite.ok()) return rewrite;
  if (!reopen.ok()) return reopen;
  metrics_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Query path: pin the epoch once, scatter over main + minors + memtable,
// filter tombstones, merge under the (distance, global id) order.

KnnResult IngestController::MemtableKnn(const Memtable& mem,
                                        const std::vector<uint64_t>& tombstones,
                                        const std::vector<double>& query,
                                        size_t k) const {
  KnnResult result;
  SearchCounters& c = result.counters;
  const size_t n = mem.entries.size();
  if (n == 0 || k == 0) return result;
  // The same filter-and-refine arithmetic as SimilarityIndex::Knn — the
  // reduced query, Dist_LB filter and EuclideanDistance refinement — so
  // measured distances are bit-identical to any other path over the same
  // raw series.
  RepresentationStore query_store;
  reducer_->ReduceInto(query, m_, &query_store);
  const RepView query_rep = query_store.view(0);
  const PrefixFitter query_fitter(query);
  DistanceScratch scratch;
  TopK top(k);
  for (size_t i = 0; i < n; ++i) {
    if (Tombstoned(tombstones, mem.entries[i].id)) {
      ++c.entries_pruned_node;  // invisible: skipped before any evaluation
      continue;
    }
    const double lb =
        FilterDistanceView(query_fitter, query_rep, mem.store.view(i),
                           &scratch);
    ++c.lb_evaluations;
    if (lb <= top.Bound()) {
      const double exact = EuclideanDistance(query, mem.entries[i].values);
      ++result.num_measured;
      ++c.exact_evaluations;
      if (exact > 0.0) {
        c.lb_tightness_sum += lb / exact;
        ++c.lb_tightness_count;
      }
      top.Offer(exact, static_cast<size_t>(mem.entries[i].id));
    } else {
      ++c.entries_pruned_leaf;
    }
  }
  c.cascade_stage = c.exact_evaluations > 0 ? CascadeStage::kExact
                    : c.lb_evaluations > 0  ? CascadeStage::kLeafFilter
                                            : CascadeStage::kNodePrune;
  result.neighbors = top.Sorted();
  return result;
}

KnnResult IngestController::MemtableKnnLowerBound(
    const Memtable& mem, const std::vector<uint64_t>& tombstones,
    const std::vector<double>& query, size_t k) const {
  KnnResult result;
  SearchCounters& c = result.counters;
  const size_t n = mem.entries.size();
  if (n == 0 || k == 0) return result;
  RepresentationStore query_store;
  reducer_->ReduceInto(query, m_, &query_store);
  const RepView query_rep = query_store.view(0);
  const PrefixFitter query_fitter(query);
  DistanceScratch scratch;
  TopK top(k);
  for (size_t i = 0; i < n; ++i) {
    if (Tombstoned(tombstones, mem.entries[i].id)) {
      ++c.entries_pruned_node;
      continue;
    }
    const double lb = FilterDistanceView(query_fitter, query_rep,
                                         mem.store.view(i), &scratch);
    ++c.lb_evaluations;
    top.Offer(lb, static_cast<size_t>(mem.entries[i].id));
  }
  c.cascade_stage = c.lb_evaluations > 0 ? CascadeStage::kLeafFilter
                                         : CascadeStage::kNodePrune;
  result.neighbors = top.Sorted();
  return result;
}

KnnResult IngestController::MemtableRange(const Memtable& mem,
                                          const std::vector<uint64_t>& tombstones,
                                          const std::vector<double>& query,
                                          double radius,
                                          bool lower_bound_only) const {
  KnnResult result;
  SearchCounters& c = result.counters;
  const size_t n = mem.entries.size();
  if (n == 0) return result;
  RepresentationStore query_store;
  reducer_->ReduceInto(query, m_, &query_store);
  const RepView query_rep = query_store.view(0);
  const PrefixFitter query_fitter(query);
  DistanceScratch scratch;
  for (size_t i = 0; i < n; ++i) {
    if (Tombstoned(tombstones, mem.entries[i].id)) {
      ++c.entries_pruned_node;
      continue;
    }
    const double lb = FilterDistanceView(query_fitter, query_rep,
                                         mem.store.view(i), &scratch);
    ++c.lb_evaluations;
    const size_t gid = static_cast<size_t>(mem.entries[i].id);
    if (lower_bound_only) {
      if (lb <= radius) result.neighbors.emplace_back(lb, gid);
      continue;
    }
    if (lb <= radius) {
      const double exact = EuclideanDistance(query, mem.entries[i].values);
      ++result.num_measured;
      ++c.exact_evaluations;
      if (exact > 0.0) {
        c.lb_tightness_sum += lb / exact;
        ++c.lb_tightness_count;
      }
      if (exact <= radius) result.neighbors.emplace_back(exact, gid);
    } else {
      ++c.entries_pruned_leaf;
    }
  }
  c.cascade_stage = c.exact_evaluations > 0 ? CascadeStage::kExact
                    : c.lb_evaluations > 0  ? CascadeStage::kLeafFilter
                                            : CascadeStage::kNodePrune;
  std::sort(result.neighbors.begin(), result.neighbors.end());
  return result;
}

namespace {

/// Folds one generation's answer into the merged result, remapping local
/// ids through `ids` and dropping tombstoned entries.
void AccumulateFiltered(const KnnResult& part, const std::vector<uint64_t>& ids,
                        const std::vector<uint64_t>& tombstones,
                        KnnResult* out) {
  for (const auto& [dist, local] : part.neighbors) {
    const uint64_t gid = ids[local];
    if (!Tombstoned(tombstones, gid))
      out->neighbors.emplace_back(dist, static_cast<size_t>(gid));
  }
  out->num_measured += part.num_measured;
  out->counters.Add(part.counters);
  out->approximate = out->approximate || part.approximate;
}

/// Folds a memtable answer (already global ids, already filtered).
void AccumulateDirect(const KnnResult& part, KnnResult* out) {
  out->neighbors.insert(out->neighbors.end(), part.neighbors.begin(),
                        part.neighbors.end());
  out->num_measured += part.num_measured;
  out->counters.Add(part.counters);
  out->approximate = out->approximate || part.approximate;
}

}  // namespace

KnnResult IngestController::Knn(const std::vector<double>& query,
                                size_t k) const {
  return KnnWithExplain(query, k, nullptr);
}

KnnResult IngestController::KnnExplain(const std::vector<double>& query,
                                       size_t k,
                                       obs::QueryExplain* explain) const {
  return KnnWithExplain(query, k, explain);
}

KnnResult IngestController::KnnWithExplain(const std::vector<double>& query,
                                           size_t k,
                                           obs::QueryExplain* explain) const {
  SAPLA_TRACE_SPAN("ingest/knn");
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_us = [](std::chrono::steady_clock::time_point since) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - since)
            .count());
  };
  // One explain part per generation the query touches. The part counters
  // come from the raw per-generation results — tombstone filtering drops
  // neighbors, never counters — so their sum equals the merged counters.
  const auto add_part = [explain](const char* name, const KnnResult& part,
                                  uint64_t dur_us) {
    if (explain == nullptr) return;
    obs::ShardExplain p;
    p.part = name;
    p.dur_us = dur_us;
    p.results = part.neighbors.size();
    p.counters = part.counters;
    explain->parts.push_back(std::move(p));
  };

  KnnResult out;
  if (k == 0) return out;
  const auto e = PinEpoch();
  // Over-fetch: a generation's top (k + |tombstones|) minus the tombstoned
  // entries still contains its top-k visible answers, so the filtered
  // union provably contains the global visible top-k.
  const size_t k_eff = k + e->tombstones.size();
  if (e->main) {
    const auto g0 = std::chrono::steady_clock::now();
    const KnnResult part = e->main->index->Knn(query, k_eff);
    add_part("main", part, elapsed_us(g0));
    AccumulateFiltered(part, e->main->ids, e->tombstones, &out);
  }
  for (size_t g = 0; g < e->minors.size(); ++g) {
    const auto g0 = std::chrono::steady_clock::now();
    const KnnResult part = e->minors[g]->index->Knn(query, k_eff);
    if (explain != nullptr) {
      const std::string name = "minor" + std::to_string(g);
      add_part(name.c_str(), part, elapsed_us(g0));
    }
    AccumulateFiltered(part, e->minors[g]->ids, e->tombstones, &out);
  }
  {
    const auto g0 = std::chrono::steady_clock::now();
    const KnnResult part = MemtableKnn(*e->memtable, e->tombstones, query, k);
    add_part("memtable", part, elapsed_us(g0));
    AccumulateDirect(part, &out);
  }
  std::sort(out.neighbors.begin(), out.neighbors.end());
  if (out.neighbors.size() > k) out.neighbors.resize(k);
  if (explain != nullptr) {
    explain->trace_id = obs::CurrentTraceContext().trace_id;
    explain->total_us = elapsed_us(t0);
    explain->epoch_seq = e->seq;
    explain->approximate = out.approximate;
    explain->counters = out.counters;
    explain->stages.push_back({"generations", explain->total_us});
  }
  return out;
}

KnnResult IngestController::KnnLowerBound(const std::vector<double>& query,
                                          size_t k) const {
  SAPLA_TRACE_SPAN("ingest/knn_lb");
  KnnResult out;
  if (k == 0) return out;
  const auto e = PinEpoch();
  const size_t k_eff = k + e->tombstones.size();
  if (e->main)
    AccumulateFiltered(e->main->index->KnnLowerBound(query, k_eff),
                       e->main->ids, e->tombstones, &out);
  for (const auto& minor : e->minors)
    AccumulateFiltered(minor->index->KnnLowerBound(query, k_eff), minor->ids,
                       e->tombstones, &out);
  AccumulateDirect(
      MemtableKnnLowerBound(*e->memtable, e->tombstones, query, k), &out);
  std::sort(out.neighbors.begin(), out.neighbors.end());
  if (out.neighbors.size() > k) out.neighbors.resize(k);
  return out;
}

KnnResult IngestController::RangeSearch(const std::vector<double>& query,
                                        double radius) const {
  SAPLA_TRACE_SPAN("ingest/range");
  KnnResult out;
  const auto e = PinEpoch();
  if (e->main)
    AccumulateFiltered(e->main->index->RangeSearch(query, radius),
                       e->main->ids, e->tombstones, &out);
  for (const auto& minor : e->minors)
    AccumulateFiltered(minor->index->RangeSearch(query, radius), minor->ids,
                       e->tombstones, &out);
  AccumulateDirect(
      MemtableRange(*e->memtable, e->tombstones, query, radius,
                    /*lower_bound_only=*/false),
      &out);
  std::sort(out.neighbors.begin(), out.neighbors.end());
  return out;
}

KnnResult IngestController::RangeSearchLowerBound(
    const std::vector<double>& query, double radius) const {
  SAPLA_TRACE_SPAN("ingest/range_lb");
  KnnResult out;
  const auto e = PinEpoch();
  if (e->main)
    AccumulateFiltered(e->main->index->RangeSearchLowerBound(query, radius),
                       e->main->ids, e->tombstones, &out);
  for (const auto& minor : e->minors)
    AccumulateFiltered(minor->index->RangeSearchLowerBound(query, radius),
                       minor->ids, e->tombstones, &out);
  AccumulateDirect(
      MemtableRange(*e->memtable, e->tombstones, query, radius,
                    /*lower_bound_only=*/true),
      &out);
  std::sort(out.neighbors.begin(), out.neighbors.end());
  return out;
}

// Batch workers re-bind the per-request context before searching so each
// query's spans stitch into its own submitter's trace tree (see
// SearchBatchOptions::trace_of).
std::vector<KnnResult> IngestController::KnnBatch(
    const std::vector<std::vector<double>>& queries, size_t k,
    const BatchOptions& options) const {
  std::vector<KnnResult> results(queries.size());
  ParallelFor(
      0, queries.size(),
      [&](size_t i) {
        if (options.cancel && options.cancel(i)) return;
        const obs::TraceContext ctx = options.trace_of
                                          ? options.trace_of(i)
                                          : obs::CurrentTraceContext();
        obs::TraceContextScope trace_scope(ctx);
        SAPLA_TRACE_SPAN("batch/query");
        obs::QueryExplain* explain =
            options.explain_of ? options.explain_of(i) : nullptr;
        results[i] = KnnWithExplain(queries[i], k, explain);
      },
      options.num_threads);
  return results;
}

std::vector<KnnResult> IngestController::RangeSearchBatch(
    const std::vector<std::vector<double>>& queries, double radius,
    const BatchOptions& options) const {
  std::vector<KnnResult> results(queries.size());
  ParallelFor(
      0, queries.size(),
      [&](size_t i) {
        if (options.cancel && options.cancel(i)) return;
        const obs::TraceContext ctx = options.trace_of
                                          ? options.trace_of(i)
                                          : obs::CurrentTraceContext();
        obs::TraceContextScope trace_scope(ctx);
        SAPLA_TRACE_SPAN("batch/query");
        results[i] = RangeSearch(queries[i], radius);
      },
      options.num_threads);
  return results;
}

size_t IngestController::dataset_size() const { return PinEpoch()->visible; }

uint64_t IngestController::corpus_id() const { return PinEpoch()->corpus_id; }

size_t IngestController::num_shards() const {
  const auto e = PinEpoch();
  return e->main ? e->main->index->num_shards() : 1;
}

ShardHealth IngestController::shard_health(size_t shard) const {
  const auto e = PinEpoch();
  return e->main ? e->main->index->shard_health(shard)
                 : ShardHealth::kHealthy;
}

StoreFootprint IngestController::footprint() const {
  const auto e = PinEpoch();
  StoreFootprint total;
  if (e->main) total += e->main->index->footprint();
  for (const auto& minor : e->minors) total += minor->index->footprint();
  total += e->memtable->store.footprint();
  return total;
}

IngestController::EpochStats IngestController::GetEpochStats() const {
  const auto e = PinEpoch();
  EpochStats s;
  s.seq = e->seq;
  s.memtable_entries = e->memtable->entries.size();
  s.minor_generations = e->minors.size();
  s.main_entries = e->main ? e->main->ids.size() : 0;
  s.tombstones = e->tombstones.size();
  s.visible = e->visible;
  return s;
}

std::vector<uint64_t> IngestController::VisibleIds() const {
  const auto e = PinEpoch();
  std::vector<uint64_t> ids;
  ids.reserve(e->visible);
  const auto add = [&](uint64_t id) {
    if (!Tombstoned(e->tombstones, id)) ids.push_back(id);
  };
  if (e->main)
    for (uint64_t id : e->main->ids) add(id);
  for (const auto& minor : e->minors)
    for (uint64_t id : minor->ids) add(id);
  for (const MemEntry& entry : e->memtable->entries) add(entry.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Dataset IngestController::VisibleDataset() const {
  const auto e = PinEpoch();
  std::vector<std::pair<uint64_t, const TimeSeries*>> rows;
  rows.reserve(e->visible);
  const auto add = [&](uint64_t id, const TimeSeries* ts) {
    if (!Tombstoned(e->tombstones, id)) rows.emplace_back(id, ts);
  };
  if (e->main)
    for (size_t i = 0; i < e->main->ids.size(); ++i)
      add(e->main->ids[i], &e->main->dataset.series[i]);
  for (const auto& minor : e->minors)
    for (size_t i = 0; i < minor->ids.size(); ++i)
      add(minor->ids[i], &minor->dataset.series[i]);
  std::vector<TimeSeries> mem_series;
  mem_series.reserve(e->memtable->entries.size());
  for (const MemEntry& entry : e->memtable->entries)
    mem_series.emplace_back(entry.values, entry.label);
  for (size_t i = 0; i < e->memtable->entries.size(); ++i)
    add(e->memtable->entries[i].id, &mem_series[i]);
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Dataset out;
  out.name = "ingest-visible";
  out.series.reserve(rows.size());
  for (const auto& [id, ts] : rows) out.series.push_back(*ts);
  return out;
}

}  // namespace sapla
