#include "ingest/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "ts/io.h"
#include "util/binio.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace sapla {

namespace {

constexpr char kMagic[] = "SAPLAWAL";  // 8 bytes, no terminator written
constexpr size_t kMagicLen = 8;
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderLen = kMagicLen + 4;  // magic + u32 version

// A frame's payload never legitimately exceeds this (a series of ~100M
// points); anything larger is treated as corruption, not an allocation.
constexpr uint32_t kMaxPayload = 1u << 30;

std::string EncodeHeader() {
  std::string out(kMagic, kMagicLen);
  binio::PutU32(&out, kVersion);
  return out;
}

std::string EncodePayload(const WalRecord& r) {
  std::string p;
  binio::PutU32(&p, static_cast<uint32_t>(r.kind));
  binio::PutU64(&p, r.seq);
  binio::PutU64(&p, r.id);
  if (r.kind == WalRecord::Kind::kInsert) {
    binio::PutI64(&p, r.label);
    binio::PutU64(&p, r.expiry_seq);
    binio::PutU64(&p, static_cast<uint64_t>(r.values.size()));
    for (double v : r.values) binio::PutF64(&p, v);
  }
  return p;
}

/// Decodes one payload; false on any structural problem.
bool DecodePayload(const std::string& payload, WalRecord* out) {
  binio::Reader r(payload);
  const uint32_t kind = r.ReadU32();
  out->seq = r.ReadU64();
  out->id = r.ReadU64();
  if (kind == static_cast<uint32_t>(WalRecord::Kind::kInsert)) {
    out->kind = WalRecord::Kind::kInsert;
    out->label = r.ReadI64();
    out->expiry_seq = r.ReadU64();
    const uint64_t count = r.ReadU64();
    if (!r.ok() || count * 8 != r.remaining()) return false;
    out->values.resize(count);
    for (uint64_t i = 0; i < count; ++i) out->values[i] = r.ReadF64();
  } else if (kind == static_cast<uint32_t>(WalRecord::Kind::kDelete)) {
    out->kind = WalRecord::Kind::kDelete;
    out->label = 0;
    out->expiry_seq = 0;
    out->values.clear();
    if (r.remaining() != 0) return false;
  } else {
    return false;
  }
  return r.ok();
}

}  // namespace

WriteAheadLog::~WriteAheadLog() { Close(); }

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      bytes_appended_(other.bytes_appended_),
      good_size_(other.good_size_) {
  other.file_ = nullptr;
  other.bytes_appended_ = 0;
  other.good_size_ = 0;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    path_ = std::move(other.path_);
    bytes_appended_ = other.bytes_appended_;
    good_size_ = other.good_size_;
    other.file_ = nullptr;
    other.bytes_appended_ = 0;
    other.good_size_ = 0;
  }
  return *this;
}

void WriteAheadLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WriteAheadLog::Open(const std::string& path) {
  Close();
  SAPLA_FAULT_POINT("ingest/wal_open");
  // "a" keeps existing records; ftell says whether the header exists yet.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("wal: cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  const long pos = std::ftell(f);
  if (pos < 0) {
    std::fclose(f);
    return Status::IOError("wal: ftell failed on '" + path + "'");
  }
  if (pos == 0) {
    const std::string header = EncodeHeader();
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
        std::fflush(f) != 0) {
      std::fclose(f);
      return Status::IOError("wal: cannot write header to '" + path + "'");
    }
  }
  // Track the end of the last fully flushed frame so a failed append can
  // truncate back to it instead of leaving a torn tail on disk.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("wal: seek failed on '" + path + "'");
  }
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return Status::IOError("wal: ftell failed on '" + path + "'");
  }
  file_ = f;
  path_ = path;
  good_size_ = static_cast<uint64_t>(end);
  return Status::OK();
}

std::string WriteAheadLog::EncodeFrame(const WalRecord& record) {
  const std::string payload = EncodePayload(record);
  std::string frame;
  binio::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  binio::PutU32(&frame, Crc32c(payload));
  frame.append(payload);
  return frame;
}

Status WriteAheadLog::Append(const WalRecord& record) {
  if (file_ == nullptr) return Status::Internal("wal: append on closed log");
  SAPLA_FAULT_POINT("ingest/wal_append");
  SAPLA_FAULT_POINT("ingest/wal_full");
  const std::string frame = EncodeFrame(record);
  SAPLA_RETURN_NOT_OK(PreflightDiskSpace(path_, frame.size()));

  // "ingest/wal_torn" simulates a crash mid-append: only half the frame
  // reaches the file, and the append must still fail CLEANLY — the torn
  // bytes are truncated away so the log ends at the last good frame.
  size_t to_write = frame.size();
  const Status torn = fault::Check("ingest/wal_torn");
  if (!torn.ok()) to_write = frame.size() / 2;

  Status st = torn;
  if (std::fwrite(frame.data(), 1, to_write, file_) != to_write ||
      std::fflush(file_) != 0) {
    const int err = errno;
    const std::string msg =
        "wal: short append to '" + path_ + "': " + std::strerror(err);
    st = (err == ENOSPC || err == EDQUOT) ? Status::ResourceExhausted(msg)
                                          : Status::IOError(msg);
  }
  if (!st.ok()) {
    // Roll the file back to the last fully flushed frame. The stream's
    // buffer is unreliable after a failed flush, so drop the handle first
    // (ignoring the close's own flush errors), truncate by path, and
    // reopen. If the rollback itself fails the log stays closed and the
    // controller fails subsequent mutations closed — it never appends
    // after a tear.
    std::fclose(file_);
    file_ = nullptr;
    if (::truncate(path_.c_str(), static_cast<off_t>(good_size_)) != 0) {
      return Status::IOError("wal: failed to roll back torn append to '" +
                             path_ + "'; log closed");
    }
    std::FILE* reopened = std::fopen(path_.c_str(), "ab");
    if (reopened != nullptr) file_ = reopened;
    return st;
  }
  good_size_ += frame.size();
  bytes_appended_ += frame.size();
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (file_ == nullptr) return Status::Internal("wal: sync on closed log");
  SAPLA_FAULT_POINT("ingest/wal_sync");
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Status::IOError("wal: fsync failed on '" + path_ + "'");
  }
  return Status::OK();
}

Result<WalReplay> WriteAheadLog::Replay(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return WalReplay{};  // no log yet: empty history
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("wal: cannot read '" + path + "'");
  if (data.empty()) return WalReplay{};
  if (data.size() < kHeaderLen ||
      data.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("wal: bad magic in '" + path + "'");
  }
  {
    binio::Reader hdr(data);
    hdr.ReadBytes(kMagicLen);
    const uint32_t version = hdr.ReadU32();
    if (version != kVersion) {
      return Status::InvalidArgument("wal: unsupported version " +
                                     std::to_string(version) + " in '" + path +
                                     "'");
    }
  }

  WalReplay out;
  size_t pos = kHeaderLen;
  while (pos + 8 <= data.size()) {
    binio::Reader fr(data);
    fr.ReadBytes(pos);
    const uint32_t len = fr.ReadU32();
    const uint32_t crc = fr.ReadU32();
    if (len > kMaxPayload || pos + 8 + len > data.size()) break;
    const std::string payload = data.substr(pos + 8, len);
    if (Crc32c(payload) != crc) break;
    WalRecord rec;
    if (!DecodePayload(payload, &rec)) break;
    out.records.push_back(std::move(rec));
    pos += 8 + len;
  }
  out.dropped_bytes = data.size() - pos;
  return out;
}

Status WriteAheadLog::Rewrite(const std::string& path,
                              const std::vector<WalRecord>& records) {
  std::string data = EncodeHeader();
  for (const WalRecord& r : records) data.append(EncodeFrame(r));
  return AtomicWriteFile(path, data);
}

}  // namespace sapla
