#ifndef SAPLA_INGEST_INGEST_CONTROLLER_H_
#define SAPLA_INGEST_INGEST_CONTROLLER_H_

// Continuous ingestion: live inserts/deletes over the static index stack.
//
// The rest of the repo is build-once/query-many; IngestController turns it
// into an LSM-style living corpus behind the same SearchIndex interface the
// serving layer already fronts (serve/service.h needs no changes):
//
//   memtable  --seal-->  minor generations  --compact-->  main generation
//
//  - Arriving series land in a MUTABLE MEMTABLE, reduced online as they
//    arrive (Reducer::ReduceInto, or core/streaming_sapla.h for SAPLA with
//    Options::streaming_reduction) into a small RepresentationStore, and
//    are answered by an LB-filtered exact scan — no tree needed at this
//    size.
//  - When the memtable reaches Options::memtable_max entries it is SEALED
//    into an immutable MINOR GENERATION: a small SimilarityIndex adopting
//    the memtable's already-reduced store via RestoreFromStore (no
//    re-reduction; the tree is built by the same serial id-order insertion
//    a fresh Build uses).
//  - When Options::compact_min_minors minors have accumulated they COMPACT
//    with the previous main generation into a fresh ShardedIndex
//    (search/sharded_index.h) built off to the side — the PR 6 live-swap
//    machinery — dropping tombstoned and TTL-expired entries for good.
//
// Epoch-based visibility. Every published state is an immutable Epoch (main
// + sealed minors + a frozen memtable snapshot + the tombstone set) behind
// a shared_ptr, exactly the generation idiom of ShardedIndex: a query pins
// the epoch once (one mutex-guarded pointer copy), works entirely on
// immutable data, and never blocks on — or is blocked by — writers. Each
// mutation publishes a fresh Epoch; the memtable snapshot is copy-on-write
// (O(memtable_max) per insert — deliberately tiny, that is what seals are
// for). corpus_id() mixes a publication counter with every generation's
// store id, so the serve result cache is structurally unable to return a
// hit from a previous epoch.
//
// Answer parity (tests/ingest_parity_test.cc). Exact Knn / RangeSearch
// answers are a function of the VISIBLE RAW SERIES SET only: every
// generation searches its subset exactly (dbch_sound_bounds is forced, as
// in ShardedIndex), refinement distances are EuclideanDistance on the
// identical raw vectors, each part over-fetches k + |tombstones| so the
// filtered union provably contains the true top-k, and the (distance,
// global id) merge order is isomorphic to the static index's (distance,
// dense id) order because global ids are assigned monotonically. Hence,
// after ANY interleaving of inserts/deletes/seals/compactions, answers are
// bit-identical to a from-scratch SimilarityIndex over the visible set.
//
// Deletes & TTL. Deleting a memtable entry rewrites the memtable (lossless
// store round-trip, no re-reduction); deleting sealed data records a
// TOMBSTONE applied at merge time and physically dropped at the next
// compaction. TTLs are LOGICAL — measured in mutation sequence numbers,
// not wall time — so expiry is deterministic and WAL-replayable: an entry
// inserted at sequence s with ttl t is visible while the epoch sequence is
// <= s + t (i.e. it survives its own insert plus the next t-1 mutations).
//
// Durability (Options::durable_dir). Every acknowledged mutation is framed
// to a CRC32C write-ahead log (ingest/wal.h) BEFORE it is applied; a kill
// at any point loses nothing acknowledged. Recover() replays manifest +
// snapshots + WAL: Checkpoint() compacts, saves the main generation's
// per-shard snapshots (search/snapshot.h) next to a CRC'd manifest, and
// atomically truncates the WAL to just the memtable's records (original
// sequence numbers preserved, so TTL visibility replays exactly). Fault
// points ingest/{wal_open,wal_append,wal_sync,seal,compact,checkpoint}
// let sapla_chaos kill/restart mid-ingest (tools/sapla_chaos.cc).
//
// Concurrency contract: any number of concurrent readers (all SearchIndex
// methods, const); mutations are serialized internally by one writer mutex
// and may run concurrently with readers. Recover() must complete before
// the first concurrent use.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/streaming_sapla.h"
#include "ingest/wal.h"
#include "obs/metrics.h"
#include "reduction/representation.h"
#include "reduction/representation_store.h"
#include "search/knn.h"
#include "search/search_index.h"
#include "search/sharded_index.h"
#include "ts/time_series.h"
#include "util/resource_budget.h"
#include "util/status.h"

namespace sapla {

/// \brief Tuning knobs for one IngestController.
struct IngestOptions {
  /// Seal the memtable into a minor generation when it reaches this many
  /// entries (0 = only manual Seal()).
  size_t memtable_max = 64;
  /// Compact when this many sealed minors have accumulated (0 = only
  /// manual Compact()).
  size_t compact_min_minors = 4;
  /// Admission control: refuse inserts (kOverloaded) while this many
  /// sealed minors await compaction. 0 = unlimited.
  size_t max_minors = 64;
  /// Shard count of the main generation's ShardedIndex.
  size_t num_shards = 1;
  /// Per-generation index options. dbch_sound_bounds is forced on (the
  /// multi-generation merge is a partition; see file comment) and
  /// legacy_aos_corpus is rejected.
  SimilarityIndex::Options index;
  /// SAPLA only: reduce arriving series with the online StreamingSapla
  /// scan instead of the batch reducer. Answers stay exact (streaming
  /// segments are least-squares fits, so Dist_LB still lower-bounds), but
  /// differ from batch-reduced pruning characteristics.
  bool streaming_reduction = false;
  /// Directory for WAL + checkpoints; empty = no durability. The caller
  /// creates the directory and calls Recover() once before use.
  std::string durable_dir;
  /// Codec for checkpointed shard snapshots (search/snapshot.h): a lossy
  /// step writes quantized v4 store sections — smaller checkpoints, and a
  /// recovered controller still answers id-identically (slack-adjusted
  /// pruning + raw refinement). Default: lossless, byte-stable v3.
  SnapshotWriteOptions snapshot_codec;
  /// Memory governance (util/resource_budget.h): the controller accounts
  /// the memtable's and every sealed minor's approximate bytes against
  /// this budget (force-reserved — the data already exists; overflow is
  /// what surfaces as pressure). Under soft/hard pressure inserts first
  /// force a seal + compaction (moving bytes into the unmetered main
  /// generation); inserts arriving while pressure is still hard are shed
  /// with kOverloaded. Null = no metering.
  std::shared_ptr<ResourceBudget> memory_budget;
};

/// \brief Live-mutable searchable corpus behind the SearchIndex interface.
class IngestController : public SearchIndex {
 public:
  /// `series_length` is fixed up front so the serving layer can validate
  /// query lengths before the first insert arrives.
  IngestController(Method method, size_t m, IndexKind kind,
                   size_t series_length, const IngestOptions& options);
  ~IngestController() override;

  IngestController(const IngestController&) = delete;
  IngestController& operator=(const IngestController&) = delete;

  /// Replays manifest + shard snapshots + WAL from Options::durable_dir.
  /// Call once, before any mutation or query, on a freshly constructed
  /// controller; a no-op without durable_dir. Snapshot restore failures
  /// fall back to a cold rebuild — only an unreadable manifest/WAL is an
  /// error.
  Status Recover();

  /// Inserts one series; returns its immutable global id. Validates
  /// length == series_length() and finite values. `ttl_mutations` > 0
  /// makes the entry expire after that many further mutations (logical
  /// TTL; see file comment). May return kOverloaded under admission
  /// control, or an I/O error when the WAL append fails (the mutation is
  /// then NOT applied).
  Result<uint64_t> Insert(const std::vector<double>& values, int label = -1,
                          uint64_t ttl_mutations = 0);

  /// Deletes one series by global id. NotFound for unknown, already
  /// deleted, or already expired ids.
  Status Delete(uint64_t id);

  /// Seals the current memtable into a minor generation (no-op when the
  /// memtable is empty). Auto-triggered by Options::memtable_max.
  Status Seal();

  /// Merges main + minors − tombstones/expired into a fresh main
  /// generation built off to the side, then publishes it. The memtable is
  /// untouched. Auto-triggered by Options::compact_min_minors.
  Status Compact();

  /// Durable checkpoint: Compact(), save per-shard snapshots + manifest,
  /// truncate the WAL to the memtable's records. Requires durable_dir.
  Status Checkpoint();

  // ---- SearchIndex: epoch-pinned scatter/merge over main + minors +
  // memtable with tombstone filtering. Never blocks on writers.
  KnnResult Knn(const std::vector<double>& query, size_t k) const override;
  /// Knn plus per-generation attribution (obs/explain.h): one part per
  /// generation the query touched (main, minorN, memtable) with wall time,
  /// contributed neighbors and counters, plus the pinned epoch sequence.
  /// Part counters sum exactly to the merged counters.
  KnnResult KnnExplain(const std::vector<double>& query, size_t k,
                       obs::QueryExplain* explain) const override;
  KnnResult KnnLowerBound(const std::vector<double>& query,
                          size_t k) const override;
  KnnResult RangeSearch(const std::vector<double>& query,
                        double radius) const override;
  KnnResult RangeSearchLowerBound(const std::vector<double>& query,
                                  double radius) const override;

  using SearchIndex::KnnBatch;
  using SearchIndex::RangeSearchBatch;
  std::vector<KnnResult> KnnBatch(
      const std::vector<std::vector<double>>& queries, size_t k,
      const BatchOptions& options) const override;
  std::vector<KnnResult> RangeSearchBatch(
      const std::vector<std::vector<double>>& queries, double radius,
      const BatchOptions& options) const override;

  Method method() const override { return method_; }
  IndexKind kind() const override { return kind_; }
  size_t m() const { return m_; }
  /// Currently visible series (insertions minus deletions/expiries).
  size_t dataset_size() const override;
  size_t series_length() const override { return series_length_; }
  /// Mixes a monotonic publication counter with every generation's store
  /// id — changes on EVERY mutation, seal, compaction and recovery.
  uint64_t corpus_id() const override;
  /// Main generation's topology (1 / healthy while no main exists).
  size_t num_shards() const override;
  ShardHealth shard_health(size_t shard) const override;
  /// Sum over the pinned epoch: main shards + minors + memtable store.
  StoreFootprint footprint() const override;

  // ---- Introspection (tests, tools, benches).

  /// Structure of the currently published epoch.
  struct EpochStats {
    uint64_t seq = 0;
    size_t memtable_entries = 0;
    size_t minor_generations = 0;
    size_t main_entries = 0;
    size_t tombstones = 0;
    size_t visible = 0;
  };
  EpochStats GetEpochStats() const;

  /// Ascending global ids visible in the current epoch.
  std::vector<uint64_t> VisibleIds() const;
  /// The visible series, ascending by global id (parity baselines: a
  /// static index built over this dataset answers identically).
  Dataset VisibleDataset() const;

  /// Wait-free metrics registry (sapla_ingest_* families; obs/metrics.h).
  const IngestMetrics& metrics() const { return metrics_; }

 private:
  /// One memtable entry; `seq` and `expiry_seq` ride along so checkpoint
  /// WAL truncation can re-frame the entry verbatim.
  struct MemEntry {
    uint64_t id = 0;
    uint64_t seq = 0;
    uint64_t expiry_seq = 0;  // 0 = never expires
    int label = -1;
    std::vector<double> values;
  };

  /// Immutable memtable snapshot; rebuilt copy-on-write per mutation.
  /// store.view(i) is entries[i]'s reduction.
  struct Memtable {
    std::vector<MemEntry> entries;
    RepresentationStore store;
  };

  /// Immutable sealed generation. The index points into `dataset`, which
  /// lives at a stable address inside the shared_ptr'd Minor.
  struct Minor {
    Dataset dataset;            // ascending by global id
    std::vector<uint64_t> ids;  // local -> global
    std::unique_ptr<SimilarityIndex> index;
    /// Approximate bytes this generation pins (budget accounting), fixed
    /// at seal time.
    size_t budget_bytes = 0;
  };

  /// Immutable main generation (product of the last compaction).
  struct MainGen {
    Dataset dataset;            // ascending by global id
    std::vector<uint64_t> ids;  // local -> global
    std::vector<uint64_t> expiry;  // per entry, 0 = none
    std::unique_ptr<ShardedIndex> index;
  };

  /// One immutable published state; queries pin it with one pointer copy.
  struct Epoch {
    std::shared_ptr<const MainGen> main;  // null before the first compact
    std::vector<std::shared_ptr<const Minor>> minors;
    std::shared_ptr<const Memtable> memtable;  // never null
    /// Sorted global ids present in some generation but not visible
    /// (explicitly deleted sealed entries + TTL-expired entries).
    std::vector<uint64_t> tombstones;
    uint64_t seq = 0;        // mutation sequence at publication
    uint64_t corpus_id = 0;  // see corpus_id()
    size_t visible = 0;      // visible series count
  };

  std::shared_ptr<const Epoch> PinEpoch() const;
  /// Rebuilds tombstones/corpus id and publishes the current writer state
  /// as a fresh epoch. Caller holds mu_.
  void PublishLocked();
  /// Reduces `values` into `store` (batch reducer or StreamingSapla).
  void ReduceIntoLocked(const std::vector<double>& values,
                        RepresentationStore* store);
  /// Applies an already-validated, already-logged insert. Caller holds
  /// mu_. Publishes; runs auto-seal/auto-compact.
  void ApplyInsertLocked(MemEntry entry);
  /// Applies an already-logged delete. Caller holds mu_.
  void ApplyDeleteLocked(uint64_t id, bool in_memtable);
  Status SealLocked();
  Status CompactLocked();
  /// Re-accounts memtable + minor bytes against Options::memory_budget
  /// (force-reserve/release of the delta). Caller holds mu_.
  void UpdateBudgetLocked();
  /// Graded pressure response at insert admission: returns kOverloaded
  /// when the budget is hard-saturated even after a forced seal +
  /// compaction. Caller holds mu_.
  Status AdmitInsertLocked();
  /// True when `id` is present and unexpired at the current sequence.
  bool VisibleLocked(uint64_t id) const;

  std::string WalPath() const;
  std::string ManifestPath() const;
  std::string SnapshotPrefix() const;
  Status WriteManifestLocked() const;
  Status LoadManifest(const std::string& path, std::vector<MemEntry>* out,
                      uint64_t* seq, uint64_t* next_id) const;

  /// LB-filtered exact scan of one pinned memtable (the same filter-refine
  /// arithmetic as SimilarityIndex::Knn, so distances are bit-identical).
  KnnResult MemtableKnn(const Memtable& mem,
                        const std::vector<uint64_t>& tombstones,
                        const std::vector<double>& query, size_t k) const;
  KnnResult MemtableRange(const Memtable& mem,
                          const std::vector<uint64_t>& tombstones,
                          const std::vector<double>& query, double radius,
                          bool lower_bound_only) const;
  KnnResult MemtableKnnLowerBound(const Memtable& mem,
                                  const std::vector<uint64_t>& tombstones,
                                  const std::vector<double>& query,
                                  size_t k) const;

  /// Shared Knn body; fills `*explain` (when non-null) from the same
  /// per-generation results it merges.
  KnnResult KnnWithExplain(const std::vector<double>& query, size_t k,
                           obs::QueryExplain* explain) const;

  const Method method_;
  const size_t m_;
  const IndexKind kind_;
  const size_t series_length_;
  IngestOptions options_;
  const uint64_t instance_id_;

  /// Serializes mutations (insert/delete/seal/compact/checkpoint/recover).
  /// Queries never take it.
  mutable std::mutex mu_;
  // ---- Writer state, guarded by mu_.
  uint64_t next_id_ = 0;
  uint64_t seq_ = 0;
  uint64_t publishes_ = 0;
  std::shared_ptr<const MainGen> main_;
  std::vector<std::shared_ptr<const Minor>> minors_;
  std::shared_ptr<const Memtable> memtable_;
  /// Where each live (present, possibly expired) id resides.
  enum class Loc : uint8_t { kMemtable, kSealed };
  std::unordered_map<uint64_t, Loc> live_;
  /// Explicit tombstones over sealed entries, cleared by compaction.
  std::unordered_set<uint64_t> deletes_;
  /// id -> absolute expiry sequence for every present TTL'd entry.
  std::unordered_map<uint64_t, uint64_t> ttl_;
  std::unique_ptr<Reducer> reducer_;
  std::unique_ptr<StreamingSapla> streamer_;  // streaming_reduction only
  WriteAheadLog wal_;
  bool recovering_ = false;  // Recover() applies without re-logging
  /// Bytes currently force-reserved on Options::memory_budget.
  size_t budget_accounted_ = 0;
  /// Sequence of the last forced seal/compact pressure response, so a
  /// burst of rejected inserts pays at most one relief attempt.
  uint64_t last_relief_seq_ = UINT64_MAX;

  /// Publication lock: one pointer copy per pin, one store per publish.
  mutable std::mutex epoch_mu_;
  std::shared_ptr<const Epoch> epoch_;

  mutable IngestMetrics metrics_;
};

}  // namespace sapla

#endif  // SAPLA_INGEST_INGEST_CONTROLLER_H_
