#ifndef SAPLA_CORE_PAPER_EQUATIONS_H_
#define SAPLA_CORE_PAPER_EQUATIONS_H_

// The paper's closed-form coefficient updates, Eqs. (1)-(11), implemented
// verbatim as printed in §4.
//
// Each equation transforms least-squares line coefficients in O(1) instead
// of refitting in O(l):
//   Eq. (1)      fit a length-l segment from scratch
//   Eq. (2)      extend a fit one point to the right (Increment Segment)
//   Eqs. (3),(4) merge the fits of two adjacent segments
//   Eqs. (5),(6) recover the LEFT sub-fit from a merged fit + right sub-fit
//   Eqs. (7),(8) recover the RIGHT sub-fit from a merged fit + left sub-fit
//   Eq. (9)      shrink the right endpoint by one point
//   Eq. (10)     extend the left endpoint by one point
//   Eq. (11)     shrink the left endpoint by one point
//
// All are exact consequences of the bijection (for l >= 2) between (a, b)
// and the sufficient statistics S1 = sum(c_t), St = sum(t*c_t); the
// equivalence with direct prefix-sum refits is property-tested in
// tests/paper_equations_test.cc. The SAPLA engine itself uses the
// numerically cleaner sufficient-statistics engine (geom/line_fit.h), which
// these equations are proven (by those tests) to match.

#include <cstddef>

#include "geom/line_fit.h"

namespace sapla {

/// Eq. (1): least-squares <a, b> of c_0..c_{l-1}. l >= 2.
Line Eq1Fit(const double* values, size_t l);

/// Eq. (2): coefficients after appending point `c_new` at local index l to a
/// fit of l points. Requires l >= 2.
Line Eq2Increment(const Line& fit, size_t l, double c_new);

/// Eqs. (3)+(4): coefficients of the merged segment covering a left fit of
/// l_left points followed by a right fit of l_right points.
Line Eq34Merge(const Line& left, size_t l_left, const Line& right,
               size_t l_right);

/// Eqs. (5)+(6): left sub-segment coefficients from the merged fit and the
/// right sub-fit.
Line Eq56Left(const Line& merged, size_t l_left, const Line& right,
              size_t l_right);

/// Eqs. (7)+(8): right sub-segment coefficients from the merged fit and the
/// left sub-fit.
Line Eq78Right(const Line& merged, const Line& left, size_t l_left,
               size_t l_right);

/// Eq. (9): coefficients after removing the segment's last point, whose
/// value is `c_last`. Requires l >= 3.
Line Eq9ShrinkRight(const Line& fit, size_t l, double c_last);

/// Eq. (10): coefficients after prepending point `c_prev` (the segment's new
/// first point). Requires l >= 2.
Line Eq10GrowLeft(const Line& fit, size_t l, double c_prev);

/// Eq. (11): coefficients after removing the segment's first point, whose
/// value is `c_first`. Requires l >= 3.
Line Eq11ShrinkLeft(const Line& fit, size_t l, double c_first);

/// Sufficient statistics S1 = sum(c_t), St = sum(t*c_t) recovered from a
/// fit's coefficients (exact for l >= 2) — the bridge used to prove the
/// equations above.
void FitToSums(const Line& fit, size_t l, double* s1, double* st);

}  // namespace sapla

#endif  // SAPLA_CORE_PAPER_EQUATIONS_H_
