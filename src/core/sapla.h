#ifndef SAPLA_CORE_SAPLA_H_
#define SAPLA_CORE_SAPLA_H_

// SAPLA — Self Adaptive Piecewise Linear Approximation (paper §4).
//
// Adaptive-length linear segments <a_i, b_i, r_i> computed in three phases:
//
//  1. Initialization (Algorithm 4.2): one scan of the series. The current
//     segment is extended point by point; when the Increment Area (the area
//     between the refit line and the old line extrapolated one step,
//     Definition 4.1) exceeds the (N-1)-th largest area seen so far, the
//     segment is closed and a new one starts. Produces >= N segments.
//  2. Split & merge iteration (Algorithm 4.3): merge the adjacent pair with
//     the minimum Reconstruction Area (Definition 4.2) while there are too
//     many segments; split the segment with the maximum upper bound beta_i
//     while there are too few; then repeatedly try a paired split+merge (and
//     merge+split) and keep it whenever the sum upper bound beta decreases.
//  3. Segment endpoint movement iteration (Algorithm 4.4): hill-climb each
//     boundary of the highest-beta segments left/right while the bound sum
//     keeps dropping.
//
// Worst-case O(n(N + log n)) versus APLA's O(Nn^2), at a small max-deviation
// penalty (Fig. 12a).
//
// beta_i is the paper's O(1) surrogate bound on a segment's max deviation
// (endpoint/midpoint probe differences scaled by l-1). Setting
// SaplaOptions::use_exact_deviation replaces it with the exact per-segment
// max deviation (O(l) per evaluation) — the ablation DESIGN.md §3 calls out.

#include "reduction/representation.h"

namespace sapla {

/// Tuning knobs; the defaults reproduce the paper's configuration.
struct SaplaOptions {
  /// Phase 2 (Algorithm 4.3). Disabling keeps the raw initialization and
  /// merges down to N segments with no optimization loop.
  bool split_merge_iteration = true;

  /// Phase 3 (Algorithm 4.4).
  bool endpoint_movement = true;

  /// Replace the O(1) beta surrogate with exact max deviations in EVERY
  /// phase (split/merge thresholds included).
  bool use_exact_deviation = false;

  /// Drive phase 3 by exact per-segment max deviation (O(l) per accepted
  /// step) instead of the O(1) surrogate. The paper's movement bound tracks
  /// a running max over all scanned points — effectively exact — and the
  /// cheap probe surrogate measurably degrades the final deviation (see
  /// bench_ablation), so exact movement is the default.
  bool exact_movement = true;

  /// Cap on paired split+merge improvement rounds; 0 = auto (4N).
  size_t max_improve_rounds = 0;

  /// Plateau tolerance of the endpoint-movement hill climb: how many
  /// consecutive non-improving boundary positions to look past before
  /// stopping a walk.
  size_t move_lookahead = 3;

  /// Passes of the endpoint-movement iteration (within one phase cycle).
  size_t max_move_passes = 3;

  /// Alternations of (endpoint movement -> split&merge improvement): the
  /// movement phase re-opens structural opportunities and vice versa;
  /// cycling to a fixed point recovers most of the remaining gap to APLA.
  size_t max_phase_cycles = 3;
};

/// Phase-by-phase telemetry for ablation studies.
struct SaplaProfile {
  size_t segments_after_init = 0;
  double beta_after_init = 0.0;    ///< sum upper bound after phase 1
  double beta_after_sm = 0.0;      ///< after split & merge
  double beta_final = 0.0;         ///< after endpoint movement
  size_t merges = 0;
  size_t splits = 0;
  size_t improve_rounds = 0;       ///< accepted paired split+merge rounds
  size_t moves = 0;                ///< accepted endpoint move steps
};

/// \brief The paper's primary contribution.
class SaplaReducer : public Reducer {
 public:
  explicit SaplaReducer(const SaplaOptions& options = {})
      : options_(options) {}

  Method method() const override { return Method::kSapla; }

  /// Reduces to N = M/3 segments (Table 1 coefficient accounting).
  Representation Reduce(const std::vector<double>& values,
                        size_t m) const override;

  /// Reduces to exactly `num_segments` segments, optionally reporting
  /// phase telemetry. Requires values.size() >= 2.
  Representation ReduceToSegments(const std::vector<double>& values,
                                  size_t num_segments,
                                  SaplaProfile* profile = nullptr) const;

  /// Runs only phase 1 (Algorithm 4.2) and returns the raw initialized
  /// representation — at least `num_segments` segments, usually more (the
  /// paper's Fig. 5). Intended for inspection and ablation.
  Representation InitializeOnly(const std::vector<double>& values,
                                size_t num_segments) const;

  const SaplaOptions& options() const { return options_; }

 private:
  SaplaOptions options_;
};

}  // namespace sapla

#endif  // SAPLA_CORE_SAPLA_H_
