#ifndef SAPLA_CORE_STREAMING_SAPLA_H_
#define SAPLA_CORE_STREAMING_SAPLA_H_

// Streaming SAPLA — online adaptive segmentation in O(N) memory.
//
// SAPLA's initialization (Algorithm 4.2) is already a single left-to-right
// scan; this class runs it continuously over an unbounded stream. Each
// segment is represented only by its least-squares sufficient statistics
// (S1 = sum c, St = sum t*c, l), which support every operation the scan
// needs in O(1): incremental refits (Eq. 2), merged fits (Eqs. 3-4),
// Increment Areas and Reconstruction Areas. When the segment budget
// overflows, the adjacent pair with the smallest Reconstruction Area is
// merged — the streaming analog of the split & merge iteration's merge
// side. Raw points are never retained, so the endpoint-movement phase
// (which needs them) does not apply; batch SaplaReducer remains the
// higher-quality offline choice.
//
// This implements the natural online extension of the paper's method (its
// motivation section targets exactly such continuously collected series).

#include <cstddef>
#include <vector>

#include "geom/line_fit.h"
#include "reduction/representation.h"

namespace sapla {

/// \brief Online SAPLA over an unbounded stream, O(max_segments) memory.
class StreamingSapla {
 public:
  /// \param max_segments segment budget N (>= 1). The representation holds
  /// at most this many closed segments plus the open one.
  explicit StreamingSapla(size_t max_segments);

  /// Consumes the next stream value. Amortized O(log N) (threshold heap)
  /// plus O(N) on the rare overflow merges.
  void Append(double value);

  /// Discards all stream state (segments, open segment, threshold heap,
  /// point count) so the instance can be re-seeded with a fresh stream.
  /// After Reset() the object behaves exactly like a newly constructed
  /// StreamingSapla(max_segments) — the ingest memtable reuses one instance
  /// per arriving series instead of reallocating (src/ingest/).
  void Reset();

  /// Points consumed so far.
  size_t size() const { return count_; }

  /// Number of segments currently held (closed + open).
  size_t num_segments() const;

  /// Current representation of everything consumed so far. O(N).
  Representation Snapshot() const;

 private:
  struct Seg {
    size_t start, end;  // global inclusive range
    double s1, st;      // sufficient statistics (local time origin = start)
    size_t length() const { return end - start + 1; }
    Line line() const { return FitFromSums(s1, st, end - start + 1); }
  };

  void CloseOpenSegment();
  void MergeCheapestPair();
  static Seg MergeSegs(const Seg& a, const Seg& b);

  size_t max_segments_;
  size_t count_ = 0;
  std::vector<Seg> segs_;  // closed segments
  Seg open_{};             // the growing segment (valid once length >= 1)
  bool has_open_ = false;
  // The (N-1) largest increment areas seen (min at front of the heap).
  std::vector<double> eta_;
};

}  // namespace sapla

#endif  // SAPLA_CORE_STREAMING_SAPLA_H_
