#include "core/sapla.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "geom/areas.h"
#include "geom/line_fit.h"
#include "util/status.h"

namespace sapla {
namespace {

constexpr double kImproveEps = 1e-12;

struct Seg {
  size_t s, e;  // inclusive global range
  Line line;
  double beta;
};

// The three-phase SAPLA pipeline over one series. Every fit is O(1) via the
// prefix-sum engine, so structural operations dominate the cost.
class Engine {
 public:
  Engine(const std::vector<double>& values, size_t target,
         const SaplaOptions& opt)
      : fit_(values), n_(values.size()), target_(target), opt_(opt) {}

  Representation RunInitOnly() {
    Initialize();
    Representation rep;
    rep.method = Method::kSapla;
    rep.n = n_;
    rep.segments.reserve(segs_.size());
    for (const Seg& sg : segs_)
      rep.segments.push_back({sg.line.a, sg.line.b, sg.e});
    return rep;
  }

  Representation Run(SaplaProfile* prof) {
    SaplaProfile local;
    if (prof == nullptr) prof = &local;

    Initialize();
    prof->segments_after_init = segs_.size();
    prof->beta_after_init = SumBeta();

    // Reach exactly N segments (merges/splits are also what Algorithm 4.3
    // does before its improvement loop).
    while (segs_.size() > target_) {
      MergeOnce();
      ++prof->merges;
    }
    while (segs_.size() < target_) {
      if (!SplitOnce()) break;  // series too short to split further
      ++prof->splits;
    }
    if (opt_.split_merge_iteration) ImproveLoop(prof);
    prof->beta_after_sm = SumBeta();

    if (opt_.endpoint_movement) {
      // Alternate phases 2 and 3: a round of endpoint movement changes
      // which segment carries the worst bound, re-opening split+merge
      // opportunities (and vice versa). Iterate to a fixed point, bounded
      // by max_phase_cycles.
      double best_total = TotalExactDeviation();
      std::vector<Seg> best_cfg = segs_;
      for (size_t cycle = 0; cycle < opt_.max_phase_cycles; ++cycle) {
        EndpointMovement(prof);
        {
          // Movement alone is exact-monotone only in exact mode; keep the
          // better of pre/post states.
          const double total = TotalExactDeviation();
          if (total < best_total - kImproveEps) {
            best_total = total;
            best_cfg = segs_;
          }
        }
        if (opt_.split_merge_iteration) ImproveLoop(prof);
        const double total = TotalExactDeviation();
        if (total < best_total - kImproveEps) {
          best_total = total;
          best_cfg = segs_;
        } else {
          segs_ = best_cfg;  // roll back a non-improving cycle
          break;
        }
      }
    }
    prof->beta_final = SumBeta();

    Representation rep;
    rep.method = Method::kSapla;
    rep.n = n_;
    rep.segments.reserve(segs_.size());
    for (const Seg& sg : segs_)
      rep.segments.push_back({sg.line.a, sg.line.b, sg.e});
    return rep;
  }

 private:
  // Segment upper bound beta_i (paper §4.1.2/4.1.4/4.3.1): the max absolute
  // point difference at O(1) probe positions (both endpoints + midpoint)
  // scaled by (l-1). With use_exact_deviation it is the exact epsilon_i.
  double Beta(size_t s, size_t e, const Line& line) const {
    const size_t l = e - s + 1;
    if (l <= 1) return 0.0;
    if (opt_.use_exact_deviation) return fit_.MaxDeviation(s, e, line);
    const std::vector<double>& v = fit_.values();
    const size_t mid = s + l / 2;
    double m = std::fabs(v[s] - line.At(0.0));
    m = std::max(m, std::fabs(v[e] - line.At(static_cast<double>(l - 1))));
    m = std::max(m, std::fabs(v[mid] - line.At(static_cast<double>(mid - s))));
    return m * static_cast<double>(l - 1);
  }

  Seg Make(size_t s, size_t e) const {
    Seg sg;
    sg.s = s;
    sg.e = e;
    sg.line = fit_.Fit(s, e);
    sg.beta = Beta(s, e, sg.line);
    return sg;
  }

  double SumBeta() const {
    double sum = 0.0;
    for (const Seg& sg : segs_) sum += sg.beta;
    return sum;
  }

  // Exact sum of segment max deviations (O(n)); used only between phase
  // cycles as the convergence check.
  double TotalExactDeviation() const {
    double sum = 0.0;
    for (const Seg& sg : segs_)
      sum += fit_.MaxDeviation(sg.s, sg.e, sg.line);
    return sum;
  }

  // Phase 1 — Algorithm 4.2. The current segment [s, e] grows one point at
  // a time; the Increment Area between the refit including the candidate
  // point and the old line extrapolated one step decides whether to close.
  // The first N-1 candidates close unconditionally (eta filling up); after
  // that a close requires beating the smallest of the N-1 largest areas.
  void Initialize() {
    segs_.clear();
    if (n_ < 2) {
      segs_.push_back(Make(0, n_ - 1));
      return;
    }
    std::priority_queue<double, std::vector<double>, std::greater<double>> eta;
    size_t s = 0;
    size_t e = 1;
    size_t pos = 2;
    while (pos < n_) {
      const Line cur = fit_.Fit(s, e);
      const Line inc = fit_.Fit(s, pos);
      const double area = IncrementArea(inc, cur, pos - s);
      bool close = false;
      if (eta.size() + 1 < target_) {
        eta.push(area);
        close = true;
      } else if (!eta.empty() && area > eta.top()) {
        eta.pop();
        eta.push(area);
        close = true;
      }
      if (close) {
        segs_.push_back(Make(s, e));
        s = pos;
        e = std::min(pos + 1, n_ - 1);
        pos = e + 1;
      } else {
        e = pos++;
      }
    }
    segs_.push_back(Make(s, e));
    // A close right before the end can leave a single-point tail; fold it
    // into its neighbor to honor the paper's l > 1 convention.
    if (segs_.size() >= 2 && segs_.back().e == segs_.back().s) {
      const Seg merged = Make(segs_[segs_.size() - 2].s, segs_.back().e);
      segs_.pop_back();
      segs_.back() = merged;
    }
  }

  // Reconstruction Area (Definition 4.2) of merging segs_[i] and segs_[i+1].
  double ReconAreaOfPair(size_t i) const {
    const Seg& a = segs_[i];
    const Seg& b = segs_[i + 1];
    const Line merged = fit_.Fit(a.s, b.e);
    return ReconstructionArea(merged, a.line, a.e - a.s + 1, b.line,
                              b.e - b.s + 1);
  }

  size_t MinReconPair() const {
    SAPLA_DCHECK(segs_.size() >= 2);
    size_t best = 0;
    double best_area = ReconAreaOfPair(0);
    for (size_t i = 1; i + 1 < segs_.size(); ++i) {
      const double area = ReconAreaOfPair(i);
      if (area < best_area) {
        best_area = area;
        best = i;
      }
    }
    return best;
  }

  void MergeOnce() {
    const size_t i = MinReconPair();
    const Seg merged = Make(segs_[i].s, segs_[i + 1].e);
    segs_[i] = merged;
    segs_.erase(segs_.begin() + static_cast<ptrdiff_t>(i) + 1);
  }

  // Best split point of segment i: the interior endpoint r maximizing the
  // Reconstruction Area between the segment's line and the two sub-fits
  // (§4.3.2; we scan all candidates — same O(l) as the peak search bound).
  bool FindBestSplit(size_t i, size_t* split_r) const {
    const Seg& sg = segs_[i];
    if (sg.e - sg.s + 1 < 4) return false;  // both halves must have l >= 2
    double best_area = -1.0;
    size_t best_r = 0;
    for (size_t r = sg.s + 1; r + 2 <= sg.e; ++r) {
      const Line left = fit_.Fit(sg.s, r);
      const Line right = fit_.Fit(r + 1, sg.e);
      const double area = ReconstructionArea(sg.line, left, r - sg.s + 1,
                                             right, sg.e - r);
      if (area > best_area) {
        best_area = area;
        best_r = r;
      }
    }
    *split_r = best_r;
    return true;
  }

  size_t MaxBetaSeg() const {
    size_t best = 0;
    for (size_t i = 1; i < segs_.size(); ++i)
      if (segs_[i].beta > segs_[best].beta) best = i;
    return best;
  }

  bool SplitOnce() {
    // Split the splittable segment with the largest beta.
    size_t best = segs_.size();
    for (size_t i = 0; i < segs_.size(); ++i) {
      if (segs_[i].e - segs_[i].s + 1 < 4) continue;
      if (best == segs_.size() || segs_[i].beta > segs_[best].beta) best = i;
    }
    if (best == segs_.size()) return false;
    size_t r = 0;
    if (!FindBestSplit(best, &r)) return false;
    const Seg left = Make(segs_[best].s, r);
    const Seg right = Make(r + 1, segs_[best].e);
    segs_[best] = left;
    segs_.insert(segs_.begin() + static_cast<ptrdiff_t>(best) + 1, right);
    return true;
  }

  // Phase 2 improvement loop — Algorithm 4.3's while over beta^{sm} /
  // beta^{ms}: try split-then-merge and merge-then-split at constant segment
  // count, keep whichever lowers the sum upper bound, stop when neither does.
  void ImproveLoop(SaplaProfile* prof) {
    const size_t max_rounds =
        opt_.max_improve_rounds ? opt_.max_improve_rounds : 4 * target_ + 8;
    double beta = SumBeta();
    for (size_t round = 0; round < max_rounds; ++round) {
      const std::vector<Seg> saved = segs_;
      double best = beta;
      std::vector<Seg> best_cfg;

      // Split-then-merge (beta^{sm}).
      if (SplitOnce()) {
        MergeOnce();
        const double nb = SumBeta();
        if (nb < best - kImproveEps) {
          best = nb;
          best_cfg = segs_;
        }
      }
      segs_ = saved;

      // Merge-then-split (beta^{ms}).
      if (segs_.size() >= 2) {
        MergeOnce();
        if (SplitOnce()) {
          const double nb = SumBeta();
          if (nb < best - kImproveEps) {
            best = nb;
            best_cfg = segs_;
          }
        }
        segs_ = saved;
      }

      if (best_cfg.empty()) break;
      segs_ = std::move(best_cfg);
      beta = best;
      ++prof->improve_rounds;
    }
  }

  // Shifts the boundary between segs_[li] and segs_[li+1] by dir (+1 moves
  // it right) when that lowers the pair's beta sum. Both segments keep
  // length >= 2 (the paper's l > 1 convention).
  // Objective used to accept a boundary move: exact pair max deviation by
  // default (the paper's movement bound tracks a running max over all
  // scanned points, i.e. is effectively exact), or the O(1) surrogate when
  // exact_movement is off (ablation).
  double MoveObjective(const Seg& sg) const {
    if (opt_.exact_movement && !opt_.use_exact_deviation)
      return fit_.MaxDeviation(sg.s, sg.e, sg.line);
    return sg.beta;
  }

  // Walks the boundary between segs_[li] and segs_[li+1] in direction dir
  // (+1 = right), accepting the best position found. Up to
  // `move_lookahead` consecutive non-improving steps are explored before
  // giving up, so small plateaus in the objective do not trap the walk.
  bool HillClimbBoundary(size_t li, int dir) {
    Seg& left = segs_[li];
    Seg& right = segs_[li + 1];
    const double start_obj = MoveObjective(left) + MoveObjective(right);
    double best_obj = start_obj;
    size_t best_steps = 0;
    size_t steps = 0;
    // Current boundary = left.e; both segments keep length >= 2.
    while (true) {
      const size_t next = steps + 1;
      if (dir > 0 && right.e - right.s + 1 <= 2 + steps) break;
      if (dir < 0 && left.e - left.s + 1 <= 2 + steps) break;
      const size_t boundary =
          dir > 0 ? left.e + next : left.e - next;
      const Seg cand_left = Make(left.s, boundary);
      const Seg cand_right = Make(boundary + 1, right.e);
      const double obj = MoveObjective(cand_left) + MoveObjective(cand_right);
      steps = next;
      if (obj < best_obj - kImproveEps) {
        best_obj = obj;
        best_steps = steps;
      }
      if (steps - best_steps >= opt_.move_lookahead) break;
    }
    if (best_steps == 0) return false;
    const size_t boundary =
        dir > 0 ? left.e + best_steps : left.e - best_steps;
    left = Make(left.s, boundary);
    right = Make(boundary + 1, right.e);
    return true;
  }

  // Phase 3 — Algorithm 4.4: visit segments in decreasing beta order; for
  // each, hill-climb its left and right boundaries in both directions while
  // the bound sum keeps dropping; repeat passes until a full pass makes no
  // move.
  void EndpointMovement(SaplaProfile* prof) {
    for (size_t pass = 0; pass < opt_.max_move_passes; ++pass) {
      bool any = false;
      std::vector<bool> done(segs_.size(), false);
      for (size_t k = 0; k < segs_.size(); ++k) {
        size_t i = segs_.size();
        for (size_t j = 0; j < segs_.size(); ++j) {
          if (done[j]) continue;
          if (i == segs_.size() || segs_[j].beta > segs_[i].beta) i = j;
        }
        if (i == segs_.size()) break;
        done[i] = true;
        // Right boundary (cases 1 and 2 of Fig. 9), then left (cases 3, 4).
        for (size_t b = 0; b < 2; ++b) {
          if (b == 0 && i + 1 >= segs_.size()) continue;
          if (b == 1 && i == 0) continue;
          const size_t li = b == 0 ? i : i - 1;
          for (const int dir : {+1, -1}) {
            while (HillClimbBoundary(li, dir)) {
              any = true;
              ++prof->moves;
            }
          }
        }
      }
      if (!any) break;
    }
  }

  PrefixFitter fit_;
  size_t n_;
  size_t target_;
  SaplaOptions opt_;
  std::vector<Seg> segs_;
};

}  // namespace

Representation SaplaReducer::Reduce(const std::vector<double>& values,
                                    size_t m) const {
  return ReduceToSegments(values, SegmentsForBudget(Method::kSapla, m));
}

Representation SaplaReducer::ReduceToSegments(const std::vector<double>& values,
                                              size_t num_segments,
                                              SaplaProfile* profile) const {
  SAPLA_DCHECK(values.size() >= 2);
  SAPLA_DCHECK(num_segments >= 1);
  // Every segment needs >= 2 points.
  const size_t max_segments = std::max<size_t>(1, values.size() / 2);
  Engine engine(values, std::min(num_segments, max_segments), options_);
  return engine.Run(profile);
}

Representation SaplaReducer::InitializeOnly(const std::vector<double>& values,
                                            size_t num_segments) const {
  SAPLA_DCHECK(values.size() >= 2);
  const size_t max_segments = std::max<size_t>(1, values.size() / 2);
  Engine engine(values, std::min(num_segments, max_segments), options_);
  return engine.RunInitOnly();
}

}  // namespace sapla
