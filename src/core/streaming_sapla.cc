#include "core/streaming_sapla.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "geom/areas.h"
#include "util/status.h"

namespace sapla {

StreamingSapla::StreamingSapla(size_t max_segments)
    : max_segments_(std::max<size_t>(1, max_segments)) {}

void StreamingSapla::Reset() {
  count_ = 0;
  segs_.clear();
  open_ = Seg{};
  has_open_ = false;
  eta_.clear();
}

size_t StreamingSapla::num_segments() const {
  return segs_.size() + (has_open_ ? 1 : 0);
}

StreamingSapla::Seg StreamingSapla::MergeSegs(const Seg& a, const Seg& b) {
  Seg m;
  m.start = a.start;
  m.end = b.end;
  m.s1 = a.s1 + b.s1;
  // b's points shift to offset (b.start - a.start) in the merged frame.
  m.st = a.st + b.st +
         static_cast<double>(b.start - a.start) * b.s1;
  return m;
}

void StreamingSapla::CloseOpenSegment() {
  SAPLA_DCHECK(has_open_);
  segs_.push_back(open_);
  has_open_ = false;
  while (num_segments() > max_segments_) MergeCheapestPair();
}

void StreamingSapla::MergeCheapestPair() {
  SAPLA_DCHECK(segs_.size() >= 2);
  size_t best = 0;
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < segs_.size(); ++i) {
    const Seg merged = MergeSegs(segs_[i], segs_[i + 1]);
    const double area =
        ReconstructionArea(merged.line(), segs_[i].line(), segs_[i].length(),
                           segs_[i + 1].line(), segs_[i + 1].length());
    if (area < best_area) {
      best_area = area;
      best = i;
    }
  }
  segs_[best] = MergeSegs(segs_[best], segs_[best + 1]);
  segs_.erase(segs_.begin() + static_cast<ptrdiff_t>(best) + 1);
}

void StreamingSapla::Append(double value) {
  const size_t t = count_++;
  if (!has_open_) {
    open_ = Seg{t, t, value, 0.0};
    has_open_ = true;
    return;
  }
  if (open_.length() == 1) {
    // Always grow to the minimum length 2 before area decisions apply.
    open_.end = t;
    open_.s1 += value;
    open_.st += static_cast<double>(t - open_.start) * value;
    return;
  }

  // Increment Area of admitting the new point (Definition 4.1).
  const Line cur = open_.line();
  Seg inc = open_;
  inc.end = t;
  inc.s1 += value;
  inc.st += static_cast<double>(t - open_.start) * value;
  const double area = IncrementArea(inc.line(), cur, open_.length());

  bool close = false;
  if (eta_.size() + 1 < max_segments_) {
    eta_.push_back(area);
    std::push_heap(eta_.begin(), eta_.end(), std::greater<>());
    close = true;
  } else if (!eta_.empty() && area > eta_.front()) {
    std::pop_heap(eta_.begin(), eta_.end(), std::greater<>());
    eta_.back() = area;
    std::push_heap(eta_.begin(), eta_.end(), std::greater<>());
    close = true;
  }

  if (close) {
    CloseOpenSegment();
    open_ = Seg{t, t, value, 0.0};
    has_open_ = true;
  } else {
    open_ = inc;
  }
}

Representation StreamingSapla::Snapshot() const {
  // Work on a copy so the open segment can be folded in without touching
  // the live stream state.
  std::vector<Seg> all = segs_;
  if (has_open_) all.push_back(open_);
  while (all.size() > max_segments_) {
    size_t best = 0;
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < all.size(); ++i) {
      const Seg merged = MergeSegs(all[i], all[i + 1]);
      const double area =
          ReconstructionArea(merged.line(), all[i].line(), all[i].length(),
                             all[i + 1].line(), all[i + 1].length());
      if (area < best_area) {
        best_area = area;
        best = i;
      }
    }
    all[best] = MergeSegs(all[best], all[best + 1]);
    all.erase(all.begin() + static_cast<ptrdiff_t>(best) + 1);
  }

  Representation rep;
  rep.method = Method::kSapla;
  rep.n = count_;
  rep.segments.reserve(all.size());
  for (const Seg& sg : all) {
    const Line line = sg.line();
    rep.segments.push_back({line.a, line.b, sg.end});
  }
  return rep;
}

}  // namespace sapla
