#include "core/paper_equations.h"

#include "util/status.h"

namespace sapla {

Line Eq1Fit(const double* values, size_t l) {
  SAPLA_DCHECK(l >= 2);
  const double ld = static_cast<double>(l);
  double sa = 0.0, sb = 0.0;
  for (size_t t = 0; t < l; ++t) {
    const double td = static_cast<double>(t);
    sa += (td - (ld - 1.0) / 2.0) * values[t];
    sb += (2.0 * ld - 1.0 - 3.0 * td) * values[t];
  }
  Line out;
  out.a = 12.0 * sa / (ld * (ld - 1.0) * (ld + 1.0));
  out.b = 2.0 * sb / (ld * (ld + 1.0));
  return out;
}

Line Eq2Increment(const Line& fit, size_t l, double c_new) {
  SAPLA_DCHECK(l >= 2);
  const double li = static_cast<double>(l);
  Line out;
  out.a = ((li - 2.0) * (li - 1.0) * fit.a + 6.0 * (c_new - fit.b)) /
          ((li + 1.0) * (li + 2.0));
  out.b = (2.0 * (li - 1.0) * (fit.a * li - c_new) +
           (li + 5.0) * li * fit.b) /
          ((li + 1.0) * (li + 2.0));
  return out;
}

Line Eq34Merge(const Line& left, size_t l_left, const Line& right,
               size_t l_right) {
  SAPLA_DCHECK(l_left >= 1 && l_right >= 1);
  const double li = static_cast<double>(l_left);
  const double lj = static_cast<double>(l_right);
  const double lm = li + lj;
  Line out;
  out.a = (left.a * li * (li - 1.0) * (li + 1.0 - 3.0 * lj) -
           6.0 * li * lj * left.b +
           right.a * lj * (lj - 1.0) * (lj + 1.0 + 3.0 * li) +
           6.0 * li * lj * right.b) /
          (lm * (lm - 1.0) * (lm + 1.0));
  out.b = (left.b * li * (li + 1.0) + 2.0 * left.a * lj * li * (li - 1.0) +
           4.0 * li * lj * left.b + right.b * lj * (lj + 1.0) -
           right.a * li * lj * (lj - 1.0) - 2.0 * li * lj * right.b) /
          (lm * (lm + 1.0));
  return out;
}

void FitToSums(const Line& fit, size_t l, double* s1, double* st) {
  const double ld = static_cast<double>(l);
  // Invert the normal equations: S1 = l*b + a*l(l-1)/2,
  // St = [a*l(l^2-1) + 6(l-1)*S1] / 12.
  *s1 = ld * fit.b + fit.a * ld * (ld - 1.0) / 2.0;
  *st = (fit.a * ld * (ld - 1.0) * (ld + 1.0) + 6.0 * (ld - 1.0) * (*s1)) / 12.0;
}

Line Eq56Left(const Line& merged, size_t l_left, const Line& right,
              size_t l_right) {
  SAPLA_DCHECK(l_left >= 1 && l_right >= 1);
  // Exact inverse of Eqs. (3)+(4) via the sufficient statistics: the printed
  // forms (5)/(6) are this same algebra expanded; we keep the statistic form
  // (tested identical to direct refits and consistent with Eq34Merge).
  double s1_m, st_m, s1_r, st_r;
  FitToSums(merged, l_left + l_right, &s1_m, &st_m);
  FitToSums(right, l_right, &s1_r, &st_r);
  const double s1_l = s1_m - s1_r;
  // Right points sit at offset l_left inside the merged segment.
  const double st_l =
      st_m - (st_r + static_cast<double>(l_left) * s1_r);
  return FitFromSums(s1_l, st_l, l_left);
}

Line Eq78Right(const Line& merged, const Line& left, size_t l_left,
               size_t l_right) {
  SAPLA_DCHECK(l_left >= 1 && l_right >= 1);
  double s1_m, st_m, s1_l, st_l;
  FitToSums(merged, l_left + l_right, &s1_m, &st_m);
  FitToSums(left, l_left, &s1_l, &st_l);
  const double s1_r = s1_m - s1_l;
  const double st_r =
      (st_m - st_l) - static_cast<double>(l_left) * s1_r;
  return FitFromSums(s1_r, st_r, l_right);
}

Line Eq9ShrinkRight(const Line& fit, size_t l, double c_last) {
  SAPLA_DCHECK(l >= 3);
  const double li = static_cast<double>(l);
  Line out;
  out.a = (li + 4.0) * fit.a / (li - 2.0) +
          6.0 * (fit.b - c_last) / ((li - 1.0) * (li - 2.0));
  out.b = (li - 3.0) * fit.b / (li - 1.0) - 2.0 * fit.a +
          2.0 * c_last / (li - 1.0);
  return out;
}

Line Eq10GrowLeft(const Line& fit, size_t l, double c_prev) {
  SAPLA_DCHECK(l >= 2);
  const double li = static_cast<double>(l);
  Line out;
  out.a = (fit.a * (li - 1.0) * (li + 4.0) + 6.0 * (fit.b - c_prev)) /
          ((li + 1.0) * (li + 2.0));
  out.b = (2.0 * (2.0 * li + 1.0) * c_prev +
           li * (li - 1.0) * (fit.b - fit.a)) /
          ((li + 1.0) * (li + 2.0));
  return out;
}

Line Eq11ShrinkLeft(const Line& fit, size_t l, double c_first) {
  SAPLA_DCHECK(l >= 3);
  const double li = static_cast<double>(l);
  Line out;
  out.a = fit.a + 6.0 * (c_first - fit.b) / ((li - 1.0) * (li - 2.0));
  out.b = fit.a + ((li + 3.0) * fit.b - 4.0 * c_first) / (li - 1.0);
  return out;
}

}  // namespace sapla
