#include "reduction/paa.h"

#include "reduction/pla.h"
#include "util/status.h"

namespace sapla {

Representation PaaReducer::Reduce(const std::vector<double>& values,
                                  size_t m) const {
  SAPLA_DCHECK(values.size() >= 1);
  Representation rep;
  rep.method = Method::kPaa;
  rep.n = values.size();
  const size_t num_segments = SegmentsForBudget(Method::kPaa, m);
  const std::vector<size_t> ends = EqualLengthEndpoints(rep.n, num_segments);
  size_t start = 0;
  for (size_t r : ends) {
    double sum = 0.0;
    for (size_t t = start; t <= r; ++t) sum += values[t];
    rep.segments.push_back(
        {0.0, sum / static_cast<double>(r - start + 1), r});
    start = r + 1;
  }
  return rep;
}

}  // namespace sapla
