#ifndef SAPLA_REDUCTION_DFT_H_
#define SAPLA_REDUCTION_DFT_H_

// DFT — truncated Discrete Fourier Transform (Faloutsos, Ranganathan &
// Manolopoulos, SIGMOD 1994 — the paper's reference [10] and the original
// GEMINI reduction).
//
// Extension method (not part of the paper's Table 1 comparison): keeps the
// first M/2 complex coefficients of the orthonormal DFT, i.e. M real
// values. For real signals the spectrum is conjugate-symmetric, so each
// retained bin k in (0, n/2) implicitly carries bin n-k as well; the
// coefficient-space distance doubles those bins' energy and remains a true
// lower bound of the Euclidean distance by Parseval.

#include "reduction/representation.h"

namespace sapla {

/// \brief Truncated orthonormal real-signal DFT.
class DftReducer : public Reducer {
 public:
  Method method() const override { return Method::kDft; }
  Representation Reduce(const std::vector<double>& values,
                        size_t m) const override;
};

/// Coefficient-space lower-bound distance between two DFT representations
/// (conjugate-symmetry aware). Exposed for the filter dispatch and tests.
double DftDist(const Representation& q, const Representation& c);

}  // namespace sapla

#endif  // SAPLA_REDUCTION_DFT_H_
