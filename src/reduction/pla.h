#ifndef SAPLA_REDUCTION_PLA_H_
#define SAPLA_REDUCTION_PLA_H_

// Piecewise Linear Approximation (Chen et al., VLDB 2007).
//
// Equal-length segments, each replaced by its least-squares line
// <a_i, b_i> (the paper's Eq. (1)). N = M/2 segments, O(n) total.

#include "reduction/representation.h"

namespace sapla {

/// \brief Equal-length least-squares PLA.
class PlaReducer : public Reducer {
 public:
  Method method() const override { return Method::kPla; }
  Representation Reduce(const std::vector<double>& values,
                        size_t m) const override;
};

/// Splits [0, n) into `num_segments` near-equal contiguous ranges; returns
/// the inclusive right endpoints. Shared by all equal-length methods so PLA,
/// PAA, PAALM and SAX agree on the segmentation.
std::vector<size_t> EqualLengthEndpoints(size_t n, size_t num_segments);

}  // namespace sapla

#endif  // SAPLA_REDUCTION_PLA_H_
