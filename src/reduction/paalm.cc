#include "reduction/paalm.h"

#include "reduction/pla.h"
#include "util/status.h"

namespace sapla {

Representation PaalmReducer::Reduce(const std::vector<double>& values,
                                    size_t m) const {
  SAPLA_DCHECK(values.size() >= 1);
  Representation rep;
  rep.method = Method::kPaalm;
  rep.n = values.size();
  const size_t num_segments = SegmentsForBudget(Method::kPaalm, m);
  const std::vector<size_t> ends = EqualLengthEndpoints(rep.n, num_segments);

  // Segment means (the PAA stage).
  std::vector<double> mean(ends.size());
  size_t start = 0;
  for (size_t i = 0; i < ends.size(); ++i) {
    double sum = 0.0;
    for (size_t t = start; t <= ends[i]; ++t) sum += values[t];
    mean[i] = sum / static_cast<double>(ends[i] - start + 1);
    start = ends[i] + 1;
  }

  // Solve (I + lambda*L) v = mean where L is the 1-D graph Laplacian —
  // the stationarity system of the Lagrangian. Thomas algorithm, O(N).
  const size_t k = mean.size();
  std::vector<double> diag(k), off(k, -lambda_), rhs = mean;
  for (size_t i = 0; i < k; ++i) {
    const double degree = (i == 0 || i + 1 == k) ? 1.0 : 2.0;
    diag[i] = 1.0 + lambda_ * degree;
  }
  // Forward elimination.
  for (size_t i = 1; i < k; ++i) {
    const double w = off[i - 1] / diag[i - 1];
    diag[i] -= w * off[i - 1];
    rhs[i] -= w * rhs[i - 1];
  }
  // Back substitution.
  std::vector<double> v(k);
  v[k - 1] = rhs[k - 1] / diag[k - 1];
  for (size_t i = k - 1; i-- > 0;) v[i] = (rhs[i] - off[i] * v[i + 1]) / diag[i];

  for (size_t i = 0; i < k; ++i) rep.segments.push_back({0.0, v[i], ends[i]});
  return rep;
}

}  // namespace sapla
