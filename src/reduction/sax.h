#ifndef SAPLA_REDUCTION_SAX_H_
#define SAPLA_REDUCTION_SAX_H_

// SAX — Symbolic Aggregate approXimation (Lin et al., DMKD 2007).
//
// PAA followed by symbolization against the equiprobable breakpoints of
// N(0,1). N = M symbols; MINDIST (distance/mindist.h) lower-bounds the
// Euclidean distance on z-normalized series. O(n).

#include "reduction/representation.h"

namespace sapla {

/// \brief PAA + Gaussian-breakpoint symbolization.
class SaxReducer : public Reducer {
 public:
  /// \param alphabet_size number of symbols (2..256). The classic SAX papers
  /// use 3-10; 8 is a common default.
  explicit SaxReducer(size_t alphabet_size = 8);

  Method method() const override { return Method::kSax; }
  Representation Reduce(const std::vector<double>& values,
                        size_t m) const override;

  size_t alphabet_size() const { return alphabet_size_; }

 private:
  size_t alphabet_size_;
  std::vector<double> breakpoints_;
};

}  // namespace sapla

#endif  // SAPLA_REDUCTION_SAX_H_
