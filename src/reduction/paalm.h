#ifndef SAPLA_REDUCTION_PAALM_H_
#define SAPLA_REDUCTION_PAALM_H_

// PAALM — PAA with Lagrangian-multiplier pattern smoothing
// (Rezvani, Barnaghi, Enshaeifar, TKDE 2019).
//
// SUBSTITUTION NOTE (see DESIGN.md §5): the original PAALM represents
// continuous data as a series of patterns via Lagrangian multipliers and is
// not designed for max-deviation reduction — the paper includes it to show
// the cost of ignoring max deviation. We reproduce its experimental role
// with PAA segment means smoothed by a Lagrangian (quadratic-penalty)
// system: minimize sum_i (v_i - mean_i)^2 + lambda * sum_i (v_{i+1} - v_i)^2,
// solved exactly with the Thomas tridiagonal algorithm. The smoothing biases
// values away from the per-segment optimum, giving PAALM the worst max
// deviation among the compared methods, exactly as in the paper. O(n).

#include "reduction/representation.h"

namespace sapla {

/// \brief PAA means smoothed by a tridiagonal Lagrangian system.
class PaalmReducer : public Reducer {
 public:
  /// \param lambda smoothing strength; 0 degenerates to PAA.
  explicit PaalmReducer(double lambda = 1.0) : lambda_(lambda) {}

  Method method() const override { return Method::kPaalm; }
  Representation Reduce(const std::vector<double>& values,
                        size_t m) const override;

 private:
  double lambda_;
};

}  // namespace sapla

#endif  // SAPLA_REDUCTION_PAALM_H_
