#include "reduction/representation.h"

#include <cmath>

#include "reduction/representation_store.h"

#include "core/sapla.h"
#include "reduction/apca.h"
#include "reduction/apla.h"
#include "reduction/cheby.h"
#include "reduction/dft.h"
#include "reduction/paa.h"
#include "reduction/paalm.h"
#include "reduction/pla.h"
#include "reduction/sax.h"
#include "geom/minimax.h"
#include "util/normal.h"

namespace sapla {

std::vector<Method> AllMethods() {
  return {Method::kSapla, Method::kApla,  Method::kApca, Method::kPla,
          Method::kPaa,   Method::kPaalm, Method::kCheby, Method::kSax};
}

std::vector<Method> AllMethodsExtended() {
  std::vector<Method> methods = AllMethods();
  methods.push_back(Method::kDft);
  return methods;
}

std::string MethodName(Method method) {
  switch (method) {
    case Method::kSapla: return "SAPLA";
    case Method::kApla: return "APLA";
    case Method::kApca: return "APCA";
    case Method::kPla: return "PLA";
    case Method::kPaa: return "PAA";
    case Method::kPaalm: return "PAALM";
    case Method::kCheby: return "CHEBY";
    case Method::kSax: return "SAX";
    case Method::kDft: return "DFT";
  }
  return "Unknown";
}

size_t CoefficientsPerSegment(Method method) {
  switch (method) {
    case Method::kSapla:
    case Method::kApla:
      return 3;  // <a_i, b_i, r_i>
    case Method::kApca:
    case Method::kPla:
      return 2;  // <v_i, r_i> / <a_i, b_i>
    default:
      return 1;  // v_i / che_i / symbol
  }
}

size_t SegmentsForBudget(Method method, size_t m) {
  const size_t per = CoefficientsPerSegment(method);
  const size_t n_seg = m / per;
  return n_seg > 0 ? n_seg : 1;
}

std::vector<double> Representation::Reconstruct() const {
  std::vector<double> out(n, 0.0);
  if (method == Method::kDft) {
    // Inverse orthonormal DFT using the kept bins plus their conjugate
    // mirrors (real signal).
    const double nd = static_cast<double>(n);
    const double scale = 1.0 / std::sqrt(nd);
    const size_t bins = coeffs.size() / 2;
    for (size_t t = 0; t < n; ++t) {
      double x = bins > 0 ? coeffs[0] : 0.0;  // bin 0 (im is 0)
      for (size_t k = 1; k < bins; ++k) {
        const double angle = 2.0 * M_PI * static_cast<double>(k) *
                             static_cast<double>(t) / nd;
        const double term =
            coeffs[2 * k] * std::cos(angle) - coeffs[2 * k + 1] * std::sin(angle);
        x += (2 * k == n ? 1.0 : 2.0) * term;
      }
      out[t] = x * scale;
    }
    return out;
  }
  if (method == Method::kCheby) {
    // Inverse orthonormal DCT-II truncated to the stored coefficients.
    const double nd = static_cast<double>(n);
    for (size_t t = 0; t < n; ++t) {
      double x = coeffs.empty() ? 0.0 : coeffs[0] * std::sqrt(1.0 / nd);
      for (size_t k = 1; k < coeffs.size(); ++k) {
        x += coeffs[k] * std::sqrt(2.0 / nd) *
             std::cos(M_PI * (static_cast<double>(t) + 0.5) *
                      static_cast<double>(k) / nd);
      }
      out[t] = x;
    }
    return out;
  }
  if (method == Method::kSax) {
    // Symbols decode to the central quantile of their region — the natural
    // numeric de-symbolization (the paper notes this loses accuracy vs PAA).
    SAPLA_DCHECK(alphabet >= 2 && symbols.size() == segments.size());
    for (size_t i = 0; i < segments.size(); ++i) {
      const double v = NormalQuantile(
          (static_cast<double>(symbols[i]) + 0.5) /
          static_cast<double>(alphabet));
      for (size_t t = segment_start(i); t <= segments[i].r; ++t) out[t] = v;
    }
    return out;
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    const size_t s = segment_start(i);
    for (size_t t = s; t <= segments[i].r; ++t) {
      out[t] = segments[i].a * static_cast<double>(t - s) + segments[i].b;
    }
  }
  return out;
}

double Representation::SegmentMaxDeviation(const std::vector<double>& original,
                                           size_t i) const {
  SAPLA_DCHECK(original.size() == n);
  const size_t s = segment_start(i);
  double m = 0.0;
  for (size_t t = s; t <= segments[i].r; ++t) {
    const double rec =
        segments[i].a * static_cast<double>(t - s) + segments[i].b;
    m = std::max(m, std::fabs(original[t] - rec));
  }
  return m;
}

double Representation::SumMaxDeviation(
    const std::vector<double>& original) const {
  if (segments.empty() || method == Method::kCheby ||
      method == Method::kSax || method == Method::kDft)
    return GlobalMaxDeviation(original);
  double sum = 0.0;
  for (size_t i = 0; i < segments.size(); ++i)
    sum += SegmentMaxDeviation(original, i);
  return sum;
}

double Representation::GlobalMaxDeviation(
    const std::vector<double>& original) const {
  SAPLA_DCHECK(original.size() == n);
  const std::vector<double> rec = Reconstruct();
  double m = 0.0;
  for (size_t t = 0; t < n; ++t)
    m = std::max(m, std::fabs(original[t] - rec[t]));
  return m;
}

void MinimaxRefit(Representation* rep, const std::vector<double>& original) {
  SAPLA_DCHECK(original.size() == rep->n);
  for (size_t i = 0; i < rep->segments.size(); ++i) {
    const size_t s = rep->segment_start(i);
    const MinimaxFitResult fit =
        MinimaxFit(original.data() + s, rep->segments[i].r - s + 1);
    rep->segments[i].a = fit.line.a;
    rep->segments[i].b = fit.line.b;
  }
}

size_t Reducer::ReduceInto(const std::vector<double>& values, size_t m,
                           RepresentationStore* store) const {
  return store->Append(Reduce(values, m));
}

std::unique_ptr<Reducer> MakeReducer(Method method) {
  switch (method) {
    case Method::kSapla: return std::make_unique<SaplaReducer>();
    case Method::kApla: return std::make_unique<AplaReducer>();
    case Method::kApca: return std::make_unique<ApcaReducer>();
    case Method::kPla: return std::make_unique<PlaReducer>();
    case Method::kPaa: return std::make_unique<PaaReducer>();
    case Method::kPaalm: return std::make_unique<PaalmReducer>();
    case Method::kCheby: return std::make_unique<ChebyReducer>();
    case Method::kSax: return std::make_unique<SaxReducer>();
    case Method::kDft: return std::make_unique<DftReducer>();
  }
  return nullptr;
}

}  // namespace sapla
