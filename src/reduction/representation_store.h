#ifndef SAPLA_REDUCTION_REPRESENTATION_STORE_H_
#define SAPLA_REDUCTION_REPRESENTATION_STORE_H_

// Columnar (structure-of-arrays) corpus container for reduced
// representations, plus the cheap non-owning RepView the hot paths consume.
//
// Every filter-and-refine loop in the system — Dist_PAR / Dist_LB kernels,
// tree leaf scans, the kNN linear-scan fallback, the serving batch executor
// — iterates the whole corpus. Storing each series as a Representation
// (three small heap vectors per series) bottlenecks those loops on
// pointer-chasing; the store instead keeps one contiguous arena per column:
//
//   a[], b[]      segment line coefficients (doubles)
//   r[]           inclusive right endpoints (uint32_t; n < 2^32)
//   coeffs[]      CHEBY / DFT transform coefficients
//   symbols[]     SAX symbols
//
// plus per-series offset tables (seg_offsets_[i] .. seg_offsets_[i+1] is
// series i's slice of a/b/r, and likewise for coeffs and symbols). A store
// is homogeneous — one (method, n, alphabet) configuration, fixed by the
// first Append — because that is what a corpus is; heterogeneous archives
// stay on the v1 per-Representation text format (ts/io.h).
//
// RepView exposes the same accessor vocabulary as Representation
// (num_segments / segment_start / segment_length plus per-field reads) over
// either layout: a store slice (SoA) or a borrowed Representation (AoS, via
// RepView::Of). Distance kernels (distance/kernels.h), the feature mapper
// and the index backends are written once against RepView, so the legacy
// AoS corpus path and the columnar path run the identical arithmetic —
// the bit-identity contract tests/store_parity_test.cc enforces.
//
// Representation survives as the build/interchange type: Append() ingests
// one (losslessly), ToRepresentation() materializes one back.
//
// ## Storage tiers (docs/ARCHITECTURE.md "Storage tiers & column codecs")
//
// A store lives in one of two residency tiers:
//
//   * hot  — decoded resident arenas (the layout above). view(id) is a
//            pointer fix-up; all query paths run at full speed.
//   * cold — an mmap-backed v4 SAPLACOL archive (ts/io.h) whose encoded
//            frames are decoded lazily into a bounded LRU cache on first
//            touch (reduction/column_residency.h). view(id, &pin) pins the
//            frame containing `id`; sequential scans re-use the pin and pay
//            the cache lock once per frame, not once per series.
//
// Orthogonally, a store's float columns may be *quantized* (fixed-point,
// reduction/column_codec.h). Quantization never touches the segmentation
// (r endpoints), SAX symbols or offset tables, so a quantized corpus keeps
// the exact structure of its source; the per-series lower-bound slack
// lb_slack(id) bounds how far any Dist_LB/Dist_PAR filter value can move,
// and the search layer subtracts it before pruning so GEMINI
// no-false-dismissal survives compression (exact distances are always
// recomputed from raw series during refinement).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "reduction/representation.h"
#include "util/status.h"

namespace sapla {

namespace storedetail {
struct DecodedFrame;   // one decoded frame of a cold store
struct ColdColumns;    // mmap + frame directory + bounded decode cache
}  // namespace storedetail

/// \brief Non-owning view of one reduced series, over either the store's
/// columnar slices or a borrowed Representation. Trivially copyable; valid
/// only while the underlying storage is (for cold stores: while the
/// StoreReadPin that produced it holds the frame).
class RepView {
 public:
  RepView() = default;

  /// Views an existing AoS Representation (the legacy/interchange layout).
  static RepView Of(const Representation& rep) {
    RepView v;
    v.method_ = rep.method;
    v.n_ = rep.n;
    v.alphabet_ = rep.alphabet;
    v.num_segments_ = rep.segments.size();
    v.segs_ = rep.segments.empty() ? nullptr : rep.segments.data();
    v.coeffs_ = rep.coeffs.empty() ? nullptr : rep.coeffs.data();
    v.num_coeffs_ = rep.coeffs.size();
    v.symbols_ = rep.symbols.empty() ? nullptr : rep.symbols.data();
    v.num_symbols_ = rep.symbols.size();
    return v;
  }

  Method method() const { return method_; }
  size_t n() const { return n_; }
  size_t alphabet() const { return alphabet_; }

  size_t num_segments() const { return num_segments_; }

  /// Segment i's line slope / intercept / inclusive right endpoint.
  double seg_a(size_t i) const { return segs_ ? segs_[i].a : a_[i]; }
  double seg_b(size_t i) const { return segs_ ? segs_[i].b : b_[i]; }
  size_t seg_r(size_t i) const {
    return segs_ ? segs_[i].r : static_cast<size_t>(r_[i]);
  }

  /// Global index of segment i's first point (same math as Representation).
  size_t segment_start(size_t i) const { return i == 0 ? 0 : seg_r(i - 1) + 1; }

  /// Length of segment i (r_i - r_{i-1}).
  size_t segment_length(size_t i) const {
    return seg_r(i) - (i == 0 ? static_cast<size_t>(0) : seg_r(i - 1) + 1) + 1;
  }

  const double* coeffs() const { return coeffs_; }
  size_t num_coeffs() const { return num_coeffs_; }

  const int* symbols() const { return symbols_; }
  size_t num_symbols() const { return num_symbols_; }

  /// Raw layout access for hot kernels that hoist the AoS-vs-SoA branch
  /// out of their inner loop (distance/kernels.cc): aos_segments() is
  /// non-null iff the view borrows a Representation; otherwise the three
  /// soa_* columns are valid for num_segments() entries.
  const LinearSegment* aos_segments() const { return segs_; }
  const double* soa_a() const { return a_; }
  const double* soa_b() const { return b_; }
  const uint32_t* soa_r() const { return r_; }

 private:
  friend class RepresentationStore;

  Method method_ = Method::kSapla;
  size_t n_ = 0;
  size_t alphabet_ = 0;
  size_t num_segments_ = 0;
  // AoS mode: segs_ != nullptr and a_/b_/r_ are unused. SoA mode: segs_ ==
  // nullptr and the columns point into the store's arenas (hot) or a
  // pinned decoded frame (cold).
  const LinearSegment* segs_ = nullptr;
  const double* a_ = nullptr;
  const double* b_ = nullptr;
  const uint32_t* r_ = nullptr;
  const double* coeffs_ = nullptr;
  size_t num_coeffs_ = 0;
  const int* symbols_ = nullptr;
  size_t num_symbols_ = 0;
};

/// Fixed-point quantization steps for a store's float columns. A step of 0
/// leaves that column at full precision (raw f64 passthrough). Integer
/// columns (endpoints, symbols, offsets) are always lossless.
struct StoreCodecOptions {
  /// Step for the segment a/b coefficient columns; max abs error per value
  /// is ab_step / 2.
  double ab_step = 0.0;
  /// Step for the CHEBY/DFT transform-coefficient column.
  double coeff_step = 0.0;

  bool lossless() const { return ab_step == 0.0 && coeff_step == 0.0; }
};

/// Storage-tier footprint of one store (summed across stores by the
/// serving layer; exported as gauges by obs/metrics.h).
struct StoreFootprint {
  /// Heap bytes of decoded arenas + offset tables + slack column + the
  /// cold tier's current decode-cache contents.
  size_t resident_bytes = 0;
  /// Bytes of the mmap-backed archive (0 for hot stores).
  size_t mapped_bytes = 0;
  /// Decode-cache traffic of the cold tier (cumulative).
  uint64_t frame_hits = 0;
  uint64_t frame_misses = 0;

  StoreFootprint& operator+=(const StoreFootprint& o) {
    resident_bytes += o.resident_bytes;
    mapped_bytes += o.mapped_bytes;
    frame_hits += o.frame_hits;
    frame_misses += o.frame_misses;
    return *this;
  }
};

/// \brief Caller-held pin over the cold tier's current decoded frame.
///
/// view(id, &pin) stores the frame's shared_ptr here, which (a) keeps the
/// decoded columns alive while the returned RepView is in use — even if
/// the LRU cache evicts the frame concurrently — and (b) lets the next
/// view() on the same frame skip the cache lock entirely. One pin per
/// thread / per scan; never shared concurrently. For hot stores a pin is
/// inert and costs nothing.
class StoreReadPin {
 public:
  StoreReadPin();
  ~StoreReadPin();
  StoreReadPin(StoreReadPin&&) noexcept;
  StoreReadPin& operator=(StoreReadPin&&) noexcept;
  StoreReadPin(const StoreReadPin&) = delete;
  StoreReadPin& operator=(const StoreReadPin&) = delete;

  /// Releases the pinned frame (eviction can reclaim it).
  void Release();

 private:
  friend class RepresentationStore;

  std::shared_ptr<const storedetail::DecodedFrame> frame_;
  // Copies of the pinned frame's id range for the fast-path check.
  size_t first_ = 0;
  size_t count_ = 0;
};

/// \brief Arena-backed SoA container of one corpus' representations.
class RepresentationStore {
 public:
  RepresentationStore();

  RepresentationStore(RepresentationStore&&) = default;
  RepresentationStore& operator=(RepresentationStore&&) = default;
  // Copies duplicate content but take a FRESH store id: id() keys the serve
  // result cache, and two distinct store objects must never alias an entry
  // (a defaulted copy once did exactly that — see store_codec_test.cc's
  // regression test).
  RepresentationStore(const RepresentationStore& other);
  RepresentationStore& operator=(const RepresentationStore& other);

  /// Appends one representation (lossless; the FromRepresentation
  /// converter). The first append fixes the store's (method, n, alphabet);
  /// later appends must match. Returns the new series id (== size() - 1).
  /// Hot stores only.
  size_t Append(const Representation& rep);

  /// Materializes series `id` back into the AoS interchange type
  /// (lossless inverse of Append). Works on both tiers.
  Representation ToRepresentation(size_t id) const;

  /// Columnar view of series `id`; valid until the store is mutated.
  /// Inline: the filter loops construct one view per corpus entry per
  /// query, so this must fold into the caller. Hot stores only — cold
  /// stores require the pinned overload below.
  RepView view(size_t id) const {
    SAPLA_DCHECK(cold_ == nullptr);
    RepView v;
    v.method_ = method_;
    v.n_ = n_;
    v.alphabet_ = alphabet_;
    const uint64_t s0 = seg_off_[id];
    v.num_segments_ = static_cast<size_t>(seg_off_[id + 1] - s0);
    v.a_ = a_.data() + s0;
    v.b_ = b_.data() + s0;
    v.r_ = r_.data() + s0;
    const uint64_t c0 = coeff_off_[id];
    v.num_coeffs_ = static_cast<size_t>(coeff_off_[id + 1] - c0);
    v.coeffs_ = v.num_coeffs_ > 0 ? coeffs_.data() + c0 : nullptr;
    const uint64_t y0 = sym_off_[id];
    v.num_symbols_ = static_cast<size_t>(sym_off_[id + 1] - y0);
    v.symbols_ = v.num_symbols_ > 0 ? symbols_.data() + y0 : nullptr;
    return v;
  }
  RepView operator[](size_t id) const { return view(id); }

  /// Tier-generic view: hot stores ignore the pin; cold stores decode (or
  /// fetch from cache) the frame containing `id` and pin it. The returned
  /// view is valid while `*pin` holds the frame (until the next view()
  /// through the same pin that crosses a frame boundary, or Release()).
  RepView view(size_t id, StoreReadPin* pin) const {
    if (cold_ == nullptr) return view(id);
    return ColdView(id, pin);
  }

  /// Drops all content and configuration and assigns a fresh store id
  /// (used by SimilarityIndex::Build so rebuilds never alias cached
  /// results keyed by the old corpus).
  void Reset();

  /// Pre-sizes the arenas (series count and total segment estimate).
  void Reserve(size_t num_series, size_t total_segments);

  size_t size() const { return num_series_; }
  bool empty() const { return num_series_ == 0; }

  /// Configuration; meaningful once size() > 0.
  Method method() const { return method_; }
  size_t series_length() const { return n_; }
  size_t alphabet() const { return alphabet_; }

  /// Stable identity of this corpus instance: unique per construction /
  /// copy / Reset within the process. The serving layer keys its result
  /// cache on it, so two different corpora never alias a cache entry.
  uint64_t id() const { return store_id_; }

  // --- Quantization metadata (codec tier) ---------------------------------

  /// True when the float columns were fixed-point quantized; filter values
  /// over this store may differ from the full-precision store by at most
  /// lb_slack(id) per series, and the search layer must subtract that
  /// slack before pruning.
  bool quantized() const { return quantized_; }

  /// The steps the columns were quantized with (both 0 when !quantized()).
  const StoreCodecOptions& codec() const { return codec_; }

  /// Per-series lower-bound slack: an upper bound (in the method's filter
  /// norm) on |LB(q, this[id]) - LB(q, original[id])| for ANY query q.
  /// 0 for unquantized stores. Always resident, even on the cold tier.
  double lb_slack(size_t id) const {
    return lb_slack_.empty() ? 0.0 : lb_slack_[id];
  }
  /// max over lb_slack(id) — the store-level slack for node-distance
  /// (MBR / hull) bounds that cover many series at once.
  double max_lb_slack() const { return max_lb_slack_; }
  /// The whole slack column (persistence).
  const std::vector<double>& lb_slack_column() const { return lb_slack_; }

  /// Installs quantization metadata (used by the quantizer and the v4
  /// loader; not part of the normal build path). `lb_slack` must be empty
  /// or have size() entries.
  void SetCodecState(const StoreCodecOptions& codec,
                     std::vector<double> lb_slack);

  // --- Residency tier ------------------------------------------------------

  /// True when this store is cold (mmap-backed lazy frames).
  bool cold() const { return cold_ != nullptr; }

  /// Bytes resident vs. mapped plus decode-cache traffic.
  StoreFootprint footprint() const;

  /// Assembles a cold store over a decoded v4 archive (ts/io.h's
  /// OpenColdRepresentationStore is the public entry point).
  static RepresentationStore FromColdColumns(
      Method method, size_t n, size_t alphabet, size_t num_series,
      std::shared_ptr<storedetail::ColdColumns> cold,
      const StoreCodecOptions& codec, std::vector<double> lb_slack);

  // -------------------------------------------------------------------------

  /// Raw column access (persistence, future SIMD kernels). The offset
  /// tables have size() + 1 entries; series i's segment slice is
  /// [seg_offsets()[i], seg_offsets()[i + 1]). Hot stores only — a cold
  /// store's columns live in encoded frames.
  const std::vector<uint64_t>& seg_offsets() const { return seg_off_; }
  const std::vector<uint64_t>& coeff_offsets() const { return coeff_off_; }
  const std::vector<uint64_t>& symbol_offsets() const { return sym_off_; }
  const std::vector<double>& a_column() const { return a_; }
  const std::vector<double>& b_column() const { return b_; }
  const std::vector<uint32_t>& r_column() const { return r_; }
  const std::vector<double>& coeff_column() const { return coeffs_; }
  const std::vector<int>& symbol_column() const { return symbols_; }

  /// Rebuilds a store from raw columns (the v2 persistence loader).
  /// Validates offset-table monotonicity, column sizes and per-series
  /// segment coverage (last endpoint == n - 1); returns InvalidArgument on
  /// any structural inconsistency.
  static Result<RepresentationStore> FromColumns(
      Method method, size_t n, size_t alphabet,
      std::vector<uint64_t> seg_offsets, std::vector<uint64_t> coeff_offsets,
      std::vector<uint64_t> symbol_offsets, std::vector<double> a,
      std::vector<double> b, std::vector<uint32_t> r,
      std::vector<double> coeffs, std::vector<int> symbols);

  /// Structural + bitwise content equality including quantization
  /// metadata (store identity excluded). Hot stores only.
  friend bool operator==(const RepresentationStore& x,
                         const RepresentationStore& y);

 private:
  /// Cold-tier view: pin fast path, else lock the cache and decode/fetch.
  RepView ColdView(size_t id, StoreReadPin* pin) const;

  Method method_ = Method::kSapla;
  size_t n_ = 0;
  size_t alphabet_ = 0;
  size_t num_series_ = 0;

  // Offset tables: size num_series_ + 1, entry 0 == 0. (Hot tier only.)
  std::vector<uint64_t> seg_off_{0};
  std::vector<uint64_t> coeff_off_{0};
  std::vector<uint64_t> sym_off_{0};

  // Column arenas. (Hot tier only.)
  std::vector<double> a_, b_;
  std::vector<uint32_t> r_;
  std::vector<double> coeffs_;
  std::vector<int> symbols_;

  // Quantization metadata: set by the quantizer / v4 loader.
  bool quantized_ = false;
  StoreCodecOptions codec_;
  std::vector<double> lb_slack_;   // empty, or one entry per series
  double max_lb_slack_ = 0.0;

  // Cold tier: non-null iff this store is mmap-backed. Shared so copies
  // (which take a fresh store id) still reference one mapping + cache.
  std::shared_ptr<storedetail::ColdColumns> cold_;

  uint64_t store_id_ = 0;
};

}  // namespace sapla

#endif  // SAPLA_REDUCTION_REPRESENTATION_STORE_H_
