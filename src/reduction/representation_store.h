#ifndef SAPLA_REDUCTION_REPRESENTATION_STORE_H_
#define SAPLA_REDUCTION_REPRESENTATION_STORE_H_

// Columnar (structure-of-arrays) corpus container for reduced
// representations, plus the cheap non-owning RepView the hot paths consume.
//
// Every filter-and-refine loop in the system — Dist_PAR / Dist_LB kernels,
// tree leaf scans, the kNN linear-scan fallback, the serving batch executor
// — iterates the whole corpus. Storing each series as a Representation
// (three small heap vectors per series) bottlenecks those loops on
// pointer-chasing; the store instead keeps one contiguous arena per column:
//
//   a[], b[]      segment line coefficients (doubles)
//   r[]           inclusive right endpoints (uint32_t; n < 2^32)
//   coeffs[]      CHEBY / DFT transform coefficients
//   symbols[]     SAX symbols
//
// plus per-series offset tables (seg_offsets_[i] .. seg_offsets_[i+1] is
// series i's slice of a/b/r, and likewise for coeffs and symbols). A store
// is homogeneous — one (method, n, alphabet) configuration, fixed by the
// first Append — because that is what a corpus is; heterogeneous archives
// stay on the v1 per-Representation text format (ts/io.h).
//
// RepView exposes the same accessor vocabulary as Representation
// (num_segments / segment_start / segment_length plus per-field reads) over
// either layout: a store slice (SoA) or a borrowed Representation (AoS, via
// RepView::Of). Distance kernels (distance/kernels.h), the feature mapper
// and the index backends are written once against RepView, so the legacy
// AoS corpus path and the columnar path run the identical arithmetic —
// the bit-identity contract tests/store_parity_test.cc enforces.
//
// Representation survives as the build/interchange type: Append() ingests
// one (losslessly), ToRepresentation() materializes one back.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "reduction/representation.h"
#include "util/status.h"

namespace sapla {

/// \brief Non-owning view of one reduced series, over either the store's
/// columnar slices or a borrowed Representation. Trivially copyable; valid
/// only while the underlying storage is.
class RepView {
 public:
  RepView() = default;

  /// Views an existing AoS Representation (the legacy/interchange layout).
  static RepView Of(const Representation& rep) {
    RepView v;
    v.method_ = rep.method;
    v.n_ = rep.n;
    v.alphabet_ = rep.alphabet;
    v.num_segments_ = rep.segments.size();
    v.segs_ = rep.segments.empty() ? nullptr : rep.segments.data();
    v.coeffs_ = rep.coeffs.empty() ? nullptr : rep.coeffs.data();
    v.num_coeffs_ = rep.coeffs.size();
    v.symbols_ = rep.symbols.empty() ? nullptr : rep.symbols.data();
    v.num_symbols_ = rep.symbols.size();
    return v;
  }

  Method method() const { return method_; }
  size_t n() const { return n_; }
  size_t alphabet() const { return alphabet_; }

  size_t num_segments() const { return num_segments_; }

  /// Segment i's line slope / intercept / inclusive right endpoint.
  double seg_a(size_t i) const { return segs_ ? segs_[i].a : a_[i]; }
  double seg_b(size_t i) const { return segs_ ? segs_[i].b : b_[i]; }
  size_t seg_r(size_t i) const {
    return segs_ ? segs_[i].r : static_cast<size_t>(r_[i]);
  }

  /// Global index of segment i's first point (same math as Representation).
  size_t segment_start(size_t i) const { return i == 0 ? 0 : seg_r(i - 1) + 1; }

  /// Length of segment i (r_i - r_{i-1}).
  size_t segment_length(size_t i) const {
    return seg_r(i) - (i == 0 ? static_cast<size_t>(0) : seg_r(i - 1) + 1) + 1;
  }

  const double* coeffs() const { return coeffs_; }
  size_t num_coeffs() const { return num_coeffs_; }

  const int* symbols() const { return symbols_; }
  size_t num_symbols() const { return num_symbols_; }

  /// Raw layout access for hot kernels that hoist the AoS-vs-SoA branch
  /// out of their inner loop (distance/kernels.cc): aos_segments() is
  /// non-null iff the view borrows a Representation; otherwise the three
  /// soa_* columns are valid for num_segments() entries.
  const LinearSegment* aos_segments() const { return segs_; }
  const double* soa_a() const { return a_; }
  const double* soa_b() const { return b_; }
  const uint32_t* soa_r() const { return r_; }

 private:
  friend class RepresentationStore;

  Method method_ = Method::kSapla;
  size_t n_ = 0;
  size_t alphabet_ = 0;
  size_t num_segments_ = 0;
  // AoS mode: segs_ != nullptr and a_/b_/r_ are unused. SoA mode: segs_ ==
  // nullptr and the columns point into the store's arenas.
  const LinearSegment* segs_ = nullptr;
  const double* a_ = nullptr;
  const double* b_ = nullptr;
  const uint32_t* r_ = nullptr;
  const double* coeffs_ = nullptr;
  size_t num_coeffs_ = 0;
  const int* symbols_ = nullptr;
  size_t num_symbols_ = 0;
};

/// \brief Arena-backed SoA container of one corpus' representations.
class RepresentationStore {
 public:
  RepresentationStore();

  RepresentationStore(RepresentationStore&&) = default;
  RepresentationStore& operator=(RepresentationStore&&) = default;
  RepresentationStore(const RepresentationStore&) = default;
  RepresentationStore& operator=(const RepresentationStore&) = default;

  /// Appends one representation (lossless; the FromRepresentation
  /// converter). The first append fixes the store's (method, n, alphabet);
  /// later appends must match. Returns the new series id (== size() - 1).
  size_t Append(const Representation& rep);

  /// Materializes series `id` back into the AoS interchange type
  /// (lossless inverse of Append).
  Representation ToRepresentation(size_t id) const;

  /// Columnar view of series `id`; valid until the store is mutated.
  /// Inline: the filter loops construct one view per corpus entry per
  /// query, so this must fold into the caller.
  RepView view(size_t id) const {
    RepView v;
    v.method_ = method_;
    v.n_ = n_;
    v.alphabet_ = alphabet_;
    const uint64_t s0 = seg_off_[id];
    v.num_segments_ = static_cast<size_t>(seg_off_[id + 1] - s0);
    v.a_ = a_.data() + s0;
    v.b_ = b_.data() + s0;
    v.r_ = r_.data() + s0;
    const uint64_t c0 = coeff_off_[id];
    v.num_coeffs_ = static_cast<size_t>(coeff_off_[id + 1] - c0);
    v.coeffs_ = v.num_coeffs_ > 0 ? coeffs_.data() + c0 : nullptr;
    const uint64_t y0 = sym_off_[id];
    v.num_symbols_ = static_cast<size_t>(sym_off_[id + 1] - y0);
    v.symbols_ = v.num_symbols_ > 0 ? symbols_.data() + y0 : nullptr;
    return v;
  }
  RepView operator[](size_t id) const { return view(id); }

  /// Drops all content and configuration and assigns a fresh store id
  /// (used by SimilarityIndex::Build so rebuilds never alias cached
  /// results keyed by the old corpus).
  void Reset();

  /// Pre-sizes the arenas (series count and total segment estimate).
  void Reserve(size_t num_series, size_t total_segments);

  size_t size() const { return num_series_; }
  bool empty() const { return num_series_ == 0; }

  /// Configuration; meaningful once size() > 0.
  Method method() const { return method_; }
  size_t series_length() const { return n_; }
  size_t alphabet() const { return alphabet_; }

  /// Stable identity of this corpus instance: unique per construction /
  /// Reset within the process. The serving layer keys its result cache on
  /// it, so two different corpora never alias a cache entry.
  uint64_t id() const { return store_id_; }

  /// Raw column access (persistence, future SIMD kernels). The offset
  /// tables have size() + 1 entries; series i's segment slice is
  /// [seg_offsets()[i], seg_offsets()[i + 1]).
  const std::vector<uint64_t>& seg_offsets() const { return seg_off_; }
  const std::vector<uint64_t>& coeff_offsets() const { return coeff_off_; }
  const std::vector<uint64_t>& symbol_offsets() const { return sym_off_; }
  const std::vector<double>& a_column() const { return a_; }
  const std::vector<double>& b_column() const { return b_; }
  const std::vector<uint32_t>& r_column() const { return r_; }
  const std::vector<double>& coeff_column() const { return coeffs_; }
  const std::vector<int>& symbol_column() const { return symbols_; }

  /// Rebuilds a store from raw columns (the v2 persistence loader).
  /// Validates offset-table monotonicity, column sizes and per-series
  /// segment coverage (last endpoint == n - 1); returns InvalidArgument on
  /// any structural inconsistency.
  static Result<RepresentationStore> FromColumns(
      Method method, size_t n, size_t alphabet,
      std::vector<uint64_t> seg_offsets, std::vector<uint64_t> coeff_offsets,
      std::vector<uint64_t> symbol_offsets, std::vector<double> a,
      std::vector<double> b, std::vector<uint32_t> r,
      std::vector<double> coeffs, std::vector<int> symbols);

  /// Structural + bitwise content equality (store identity excluded).
  friend bool operator==(const RepresentationStore& x,
                         const RepresentationStore& y);

 private:
  Method method_ = Method::kSapla;
  size_t n_ = 0;
  size_t alphabet_ = 0;
  size_t num_series_ = 0;

  // Offset tables: size num_series_ + 1, entry 0 == 0.
  std::vector<uint64_t> seg_off_{0};
  std::vector<uint64_t> coeff_off_{0};
  std::vector<uint64_t> sym_off_{0};

  // Column arenas.
  std::vector<double> a_, b_;
  std::vector<uint32_t> r_;
  std::vector<double> coeffs_;
  std::vector<int> symbols_;

  uint64_t store_id_ = 0;
};

}  // namespace sapla

#endif  // SAPLA_REDUCTION_REPRESENTATION_STORE_H_
