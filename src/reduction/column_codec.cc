#include "reduction/column_codec.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "distance/kernels.h"
#include "util/binio.h"

namespace sapla {
namespace colcodec {
namespace {

// Blob header: [u32 codec id][u64 value count][u64 payload length].
void PutBlobHeader(std::string* out, ColumnCodecId id, uint64_t count,
                   uint64_t payload_len) {
  binio::PutU32(out, static_cast<uint32_t>(id));
  binio::PutU64(out, count);
  binio::PutU64(out, payload_len);
}

bool ReadRaw(Cursor* c, void* dst, size_t n) {
  if (c->remaining() < n) return false;
  std::memcpy(dst, c->p, n);
  c->p += n;
  return true;
}

bool ReadU32(Cursor* c, uint32_t* v) {
  unsigned char b[4];
  if (!ReadRaw(c, b, 4)) return false;
  *v = static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
       static_cast<uint32_t>(b[2]) << 16 | static_cast<uint32_t>(b[3]) << 24;
  return true;
}

bool ReadU64(Cursor* c, uint64_t* v) {
  unsigned char b[8];
  if (!ReadRaw(c, b, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return true;
}

bool ReadF64(Cursor* c, double* v) {
  uint64_t bits;
  if (!ReadU64(c, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

Status BadBlob(const char* what) {
  return Status::InvalidArgument(std::string("column codec: ") + what);
}

Status ReadBlobHeader(Cursor* c, uint32_t* id, uint64_t* count,
                      Cursor* payload) {
  uint64_t payload_len = 0;
  if (!ReadU32(c, id) || !ReadU64(c, count) || !ReadU64(c, &payload_len))
    return BadBlob("truncated blob header");
  if (payload_len > c->remaining()) return BadBlob("payload overruns buffer");
  payload->p = c->p;
  payload->end = c->p + payload_len;
  c->p += payload_len;
  return Status::OK();
}

// True iff v round-trips bit-exactly through fixed-point at `step`.
bool ExactlyQuantized(double v, double step, int64_t* k_out) {
  if (!std::isfinite(v)) return false;
  const double q = v / step;
  if (!(std::fabs(q) <= kMaxQuantMagnitude)) return false;
  const int64_t k = std::llround(q);
  const double back = static_cast<double>(k) * step;
  uint64_t vb, bb;
  std::memcpy(&vb, &v, sizeof(vb));
  std::memcpy(&bb, &back, sizeof(bb));
  if (vb != bb) return false;
  *k_out = k;
  return true;
}

}  // namespace

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const char** p, const char* end, uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (*p < end && shift < 64) {
    const unsigned char byte = static_cast<unsigned char>(**p);
    ++*p;
    *v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;  // truncated or > 64 bits
}

void EncodeF64Column(const double* v, size_t count, double step,
                     std::string* out) {
  if (step > 0.0 && std::isfinite(step)) {
    std::string payload;
    binio::PutF64(&payload, step);
    int64_t prev = 0;
    bool exact = true;
    for (size_t i = 0; i < count; ++i) {
      int64_t k = 0;
      if (!ExactlyQuantized(v[i], step, &k)) {
        exact = false;
        break;
      }
      PutVarint(&payload, ZigzagEncode(k - prev));
      prev = k;
    }
    if (exact) {
      PutBlobHeader(out, ColumnCodecId::kDeltaFixedF64, count,
                    payload.size());
      out->append(payload);
      return;
    }
  }
  PutBlobHeader(out, ColumnCodecId::kRawF64, count, count * 8);
  for (size_t i = 0; i < count; ++i) binio::PutF64(out, v[i]);
}

void EncodeIntColumn(const int64_t* v, size_t count, std::string* out) {
  std::string payload;
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    PutVarint(&payload, ZigzagEncode(v[i] - prev));
    prev = v[i];
  }
  PutBlobHeader(out, ColumnCodecId::kDeltaVarInt, count, payload.size());
  out->append(payload);
}

Status DecodeF64Column(Cursor* c, size_t expect_count,
                       std::vector<double>* out, double* step_out) {
  uint32_t id = 0;
  uint64_t count = 0;
  Cursor payload;
  SAPLA_RETURN_NOT_OK(ReadBlobHeader(c, &id, &count, &payload));
  if (count != expect_count) return BadBlob("f64 column count mismatch");
  out->clear();
  out->reserve(expect_count);
  if (step_out != nullptr) *step_out = 0.0;
  switch (static_cast<ColumnCodecId>(id)) {
    case ColumnCodecId::kRawF64: {
      if (payload.remaining() != count * 8)
        return BadBlob("raw f64 payload size mismatch");
      for (uint64_t i = 0; i < count; ++i) {
        double v;
        ReadF64(&payload, &v);
        out->push_back(v);
      }
      return Status::OK();
    }
    case ColumnCodecId::kDeltaFixedF64: {
      double step = 0.0;
      if (!ReadF64(&payload, &step)) return BadBlob("missing step");
      if (!(step > 0.0) || !std::isfinite(step))
        return BadBlob("invalid fixed-point step");
      if (step_out != nullptr) *step_out = step;
      int64_t k = 0;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t zz = 0;
        if (!GetVarint(&payload.p, payload.end, &zz))
          return BadBlob("truncated fixed-point delta");
        k += ZigzagDecode(zz);
        if (!(std::fabs(static_cast<double>(k)) <= kMaxQuantMagnitude))
          return BadBlob("fixed-point magnitude out of range");
        out->push_back(static_cast<double>(k) * step);
      }
      if (payload.remaining() != 0) return BadBlob("trailing payload bytes");
      return Status::OK();
    }
    default:
      return BadBlob("unknown f64 codec id");
  }
}

Status DecodeIntColumn(Cursor* c, size_t expect_count,
                       std::vector<int64_t>* out) {
  uint32_t id = 0;
  uint64_t count = 0;
  Cursor payload;
  SAPLA_RETURN_NOT_OK(ReadBlobHeader(c, &id, &count, &payload));
  if (static_cast<ColumnCodecId>(id) != ColumnCodecId::kDeltaVarInt)
    return BadBlob("unknown int codec id");
  if (count != expect_count) return BadBlob("int column count mismatch");
  out->clear();
  out->reserve(expect_count);
  int64_t v = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t zz = 0;
    if (!GetVarint(&payload.p, payload.end, &zz))
      return BadBlob("truncated int delta");
    const int64_t delta = ZigzagDecode(zz);
    // Overflow-safe accumulate: the columns we persist (offsets, u32
    // endpoints, symbols) never approach the i64 edge, so treat wraparound
    // as corruption rather than UB.
    if ((delta > 0 && v > std::numeric_limits<int64_t>::max() - delta) ||
        (delta < 0 && v < std::numeric_limits<int64_t>::min() - delta))
      return BadBlob("int delta overflow");
    v += delta;
    out->push_back(v);
  }
  if (payload.remaining() != 0) return BadBlob("trailing payload bytes");
  return Status::OK();
}

std::string EncodeStoreFrame(const RepresentationStore& store, size_t first,
                             size_t count) {
  SAPLA_DCHECK(!store.cold());
  SAPLA_DCHECK(first + count <= store.size());
  std::string out;
  binio::PutU32(&out, static_cast<uint32_t>(count));

  const auto& seg_off = store.seg_offsets();
  const auto& coeff_off = store.coeff_offsets();
  const auto& sym_off = store.symbol_offsets();
  std::vector<int64_t> tmp(count + 1);
  const auto put_local_offsets = [&](const std::vector<uint64_t>& off) {
    for (size_t i = 0; i <= count; ++i)
      tmp[i] = static_cast<int64_t>(off[first + i] - off[first]);
    EncodeIntColumn(tmp.data(), count + 1, &out);
  };
  put_local_offsets(seg_off);
  put_local_offsets(coeff_off);
  put_local_offsets(sym_off);

  const size_t s0 = seg_off[first], s1 = seg_off[first + count];
  const size_t c0 = coeff_off[first], c1 = coeff_off[first + count];
  const size_t y0 = sym_off[first], y1 = sym_off[first + count];
  const double ab_step = store.codec().ab_step;
  const double coeff_step = store.codec().coeff_step;
  EncodeF64Column(store.a_column().data() + s0, s1 - s0, ab_step, &out);
  EncodeF64Column(store.b_column().data() + s0, s1 - s0, ab_step, &out);
  std::vector<int64_t> ints(s1 - s0);
  for (size_t i = 0; i < ints.size(); ++i)
    ints[i] = static_cast<int64_t>(store.r_column()[s0 + i]);
  EncodeIntColumn(ints.data(), ints.size(), &out);
  EncodeF64Column(store.coeff_column().data() + c0, c1 - c0, coeff_step,
                  &out);
  ints.resize(y1 - y0);
  for (size_t i = 0; i < ints.size(); ++i)
    ints[i] = static_cast<int64_t>(store.symbol_column()[y0 + i]);
  EncodeIntColumn(ints.data(), ints.size(), &out);
  return out;
}

Status DecodeStoreFrame(const char* p, size_t len, size_t first_id,
                        size_t series_length, storedetail::DecodedFrame* out) {
  Cursor c{p, p + len};
  uint32_t count32 = 0;
  if (!ReadU32(&c, &count32)) return BadBlob("truncated frame header");
  const size_t count = count32;

  std::vector<int64_t> seg_off, coeff_off, sym_off;
  SAPLA_RETURN_NOT_OK(DecodeIntColumn(&c, count + 1, &seg_off));
  SAPLA_RETURN_NOT_OK(DecodeIntColumn(&c, count + 1, &coeff_off));
  SAPLA_RETURN_NOT_OK(DecodeIntColumn(&c, count + 1, &sym_off));
  const auto check_offsets = [](const std::vector<int64_t>& off,
                                const char* name) {
    if (off.front() != 0)
      return BadBlob("frame offsets must start at 0");
    for (size_t i = 0; i + 1 < off.size(); ++i)
      if (off[i] > off[i + 1]) return BadBlob("frame offsets must be nondecreasing");
    (void)name;
    return Status::OK();
  };
  SAPLA_RETURN_NOT_OK(check_offsets(seg_off, "segment"));
  SAPLA_RETURN_NOT_OK(check_offsets(coeff_off, "coefficient"));
  SAPLA_RETURN_NOT_OK(check_offsets(sym_off, "symbol"));

  const size_t total_segs = static_cast<size_t>(seg_off.back());
  const size_t total_coeffs = static_cast<size_t>(coeff_off.back());
  const size_t total_syms = static_cast<size_t>(sym_off.back());

  std::vector<double> a, b, coeffs;
  std::vector<int64_t> r64, sym64;
  SAPLA_RETURN_NOT_OK(DecodeF64Column(&c, total_segs, &a, nullptr));
  SAPLA_RETURN_NOT_OK(DecodeF64Column(&c, total_segs, &b, nullptr));
  SAPLA_RETURN_NOT_OK(DecodeIntColumn(&c, total_segs, &r64));
  SAPLA_RETURN_NOT_OK(DecodeF64Column(&c, total_coeffs, &coeffs, nullptr));
  SAPLA_RETURN_NOT_OK(DecodeIntColumn(&c, total_syms, &sym64));
  if (c.remaining() != 0) return BadBlob("trailing frame bytes");

  std::vector<uint32_t> r(total_segs);
  for (size_t i = 0; i < total_segs; ++i) {
    if (r64[i] < 0 ||
        r64[i] > static_cast<int64_t>(std::numeric_limits<uint32_t>::max()))
      return BadBlob("endpoint out of u32 range");
    r[i] = static_cast<uint32_t>(r64[i]);
  }
  std::vector<int> symbols(total_syms);
  for (size_t i = 0; i < total_syms; ++i) {
    if (sym64[i] < std::numeric_limits<int>::min() ||
        sym64[i] > std::numeric_limits<int>::max())
      return BadBlob("symbol out of int range");
    symbols[i] = static_cast<int>(sym64[i]);
  }
  // Per-series segment structure: mirrors FromColumns' validation.
  for (size_t i = 0; i < count; ++i) {
    const size_t lo = static_cast<size_t>(seg_off[i]);
    const size_t hi = static_cast<size_t>(seg_off[i + 1]);
    for (size_t j = lo + 1; j < hi; ++j)
      if (r[j - 1] >= r[j])
        return BadBlob("frame endpoints must be strictly increasing");
    if (hi > lo && series_length > 0 && r[hi - 1] != series_length - 1)
      return BadBlob("frame segments do not cover the series");
  }

  out->first_id = first_id;
  out->count = count;
  out->seg_off.assign(seg_off.begin(), seg_off.end());
  out->coeff_off.assign(coeff_off.begin(), coeff_off.end());
  out->sym_off.assign(sym_off.begin(), sym_off.end());
  out->a = std::move(a);
  out->b = std::move(b);
  out->r = std::move(r);
  out->coeffs = std::move(coeffs);
  out->symbols = std::move(symbols);
  return Status::OK();
}

}  // namespace colcodec

namespace {

// Fixed-point value transform of QuantizeStore: values the codec cannot
// represent exactly pass through unchanged (and later force their frame
// column to the raw codec).
double QuantizeValue(double v, double step) {
  if (!(step > 0.0) || !std::isfinite(v)) return v;
  const double q = v / step;
  if (!(std::fabs(q) <= colcodec::kMaxQuantMagnitude)) return v;
  return static_cast<double>(std::llround(q)) * step;
}

}  // namespace

Result<RepresentationStore> QuantizeStore(const RepresentationStore& store,
                                          const StoreCodecOptions& codec) {
  if (store.cold())
    return Status::InvalidArgument("quantize: cold stores are immutable");
  if (codec.ab_step < 0.0 || codec.coeff_step < 0.0 ||
      !std::isfinite(codec.ab_step) || !std::isfinite(codec.coeff_step))
    return Status::InvalidArgument("quantize: steps must be finite and >= 0");

  std::vector<double> a = store.a_column();
  std::vector<double> b = store.b_column();
  std::vector<double> coeffs = store.coeff_column();
  for (double& v : a) v = QuantizeValue(v, codec.ab_step);
  for (double& v : b) v = QuantizeValue(v, codec.ab_step);
  for (double& v : coeffs) v = QuantizeValue(v, codec.coeff_step);

  Result<RepresentationStore> built = RepresentationStore::FromColumns(
      store.method(), store.series_length(), store.alphabet(),
      store.seg_offsets(), store.coeff_offsets(), store.symbol_offsets(),
      std::move(a), std::move(b), store.r_column(), std::move(coeffs),
      store.symbol_column());
  if (!built.ok()) return built.status();
  RepresentationStore quantized = std::move(built).ValueOrDie();

  // Per-series slack: LB distance between the original and quantized view
  // in the method's own filter norm (see header comment). The tiny
  // relative inflation absorbs floating-point rounding between this
  // computation and the query-time kernels; source slack (an already-
  // quantized input) accumulates by the triangle inequality.
  std::vector<double> slack(store.size(), 0.0);
  DistanceScratch scratch;
  for (size_t i = 0; i < store.size(); ++i) {
    const double d =
        LowerBoundDistanceView(store.view(i), quantized.view(i), &scratch);
    slack[i] = store.lb_slack(i) + d * (1.0 + 1e-9);
  }
  quantized.SetCodecState(codec, std::move(slack));
  return quantized;
}

}  // namespace sapla
