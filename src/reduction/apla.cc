#include "reduction/apla.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "geom/convex_hull.h"
#include "geom/line_fit.h"
#include "util/status.h"

namespace sapla {

Representation AplaReducer::Reduce(const std::vector<double>& values,
                                   size_t m) const {
  const size_t n = values.size();
  SAPLA_DCHECK(n >= 2 && n <= max_length_);
  size_t num_segments = SegmentsForBudget(Method::kApla, m);
  // Paper convention: every segment has length >= 2.
  if (num_segments > n / 2) num_segments = std::max<size_t>(1, n / 2);

  PrefixFitter fitter(values);

  // err[s*n + e] = max deviation of the LS line over [s, e] (e >= s+1).
  std::vector<float> err(n * n, 0.0f);
  {
    IncrementalHull hull;
    for (size_t s = 0; s + 1 < n; ++s) {
      hull.Clear();
      hull.Add(static_cast<double>(s), values[s]);
      double s1 = values[s], st = 0.0;
      for (size_t e = s + 1; e < n; ++e) {
        hull.Add(static_cast<double>(e), values[e]);
        s1 += values[e];
        st += static_cast<double>(e - s) * values[e];
        const Line local = FitFromSums(s1, st, e - s + 1);
        // Convert to global coordinates for the hull query.
        const Line global{local.a, local.b - local.a * static_cast<double>(s)};
        err[s * n + e] = static_cast<float>(hull.MaxDeviation(global));
      }
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp_prev[e] = best sum of segment max deviations for prefix [0, e] using
  // (t-1) segments; parent[t][e] = the chosen previous segment end.
  std::vector<double> dp_prev(n, kInf), dp_cur(n, kInf);
  std::vector<std::vector<int>> parent(num_segments,
                                       std::vector<int>(n, -1));
  for (size_t e = 1; e < n; ++e) dp_prev[e] = err[0 * n + e];

  for (size_t t = 2; t <= num_segments; ++t) {
    std::fill(dp_cur.begin(), dp_cur.end(), kInf);
    // Prefix [0, e] needs at least 2t points.
    for (size_t e = 2 * t - 1; e < n; ++e) {
      double best = kInf;
      int best_alpha = -1;
      // Previous prefix ends at alpha; current segment is [alpha+1, e] with
      // length >= 2.
      for (size_t alpha = 2 * (t - 1) - 1; alpha + 2 <= e; ++alpha) {
        if (dp_prev[alpha] == kInf) continue;
        const double cand =
            dp_prev[alpha] + static_cast<double>(err[(alpha + 1) * n + e]);
        if (cand < best) {
          best = cand;
          best_alpha = static_cast<int>(alpha);
        }
      }
      dp_cur[e] = best;
      parent[t - 1][e] = best_alpha;
    }
    std::swap(dp_prev, dp_cur);
  }

  // Backtrack the optimal endpoints from e = n-1.
  std::vector<size_t> ends;
  {
    size_t e = n - 1;
    for (size_t t = num_segments; t >= 1; --t) {
      ends.push_back(e);
      if (t == 1) break;
      const int alpha = parent[t - 1][e];
      SAPLA_DCHECK(alpha >= 0);
      e = static_cast<size_t>(alpha);
    }
    std::reverse(ends.begin(), ends.end());
  }

  Representation rep;
  rep.method = Method::kApla;
  rep.n = n;
  size_t start = 0;
  for (size_t r : ends) {
    const Line line = fitter.Fit(start, r);
    rep.segments.push_back({line.a, line.b, r});
    start = r + 1;
  }
  return rep;
}

}  // namespace sapla
