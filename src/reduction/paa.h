#ifndef SAPLA_REDUCTION_PAA_H_
#define SAPLA_REDUCTION_PAA_H_

// Piecewise Aggregate Approximation (Keogh et al., KAIS 2001).
//
// Equal-length segments replaced by their mean value v_i. N = M segments,
// O(n) total.

#include "reduction/representation.h"

namespace sapla {

/// \brief Equal-length segment means.
class PaaReducer : public Reducer {
 public:
  Method method() const override { return Method::kPaa; }
  Representation Reduce(const std::vector<double>& values,
                        size_t m) const override;
};

}  // namespace sapla

#endif  // SAPLA_REDUCTION_PAA_H_
