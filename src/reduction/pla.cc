#include "reduction/pla.h"

#include "geom/line_fit.h"
#include "util/status.h"

namespace sapla {

std::vector<size_t> EqualLengthEndpoints(size_t n, size_t num_segments) {
  SAPLA_DCHECK(n >= 1);
  if (num_segments > n) num_segments = n;
  std::vector<size_t> ends(num_segments);
  for (size_t i = 0; i < num_segments; ++i) {
    // Balanced partition: segment i ends at floor((i+1)*n/N) - 1.
    ends[i] = (i + 1) * n / num_segments - 1;
  }
  return ends;
}

Representation PlaReducer::Reduce(const std::vector<double>& values,
                                  size_t m) const {
  SAPLA_DCHECK(values.size() >= 2);
  Representation rep;
  rep.method = Method::kPla;
  rep.n = values.size();
  const size_t num_segments = SegmentsForBudget(Method::kPla, m);
  const std::vector<size_t> ends = EqualLengthEndpoints(rep.n, num_segments);
  size_t start = 0;
  for (size_t r : ends) {
    const Line line = FitLine(values.data() + start, r - start + 1);
    rep.segments.push_back({line.a, line.b, r});
    start = r + 1;
  }
  return rep;
}

}  // namespace sapla
