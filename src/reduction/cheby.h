#ifndef SAPLA_REDUCTION_CHEBY_H_
#define SAPLA_REDUCTION_CHEBY_H_

// CHEBY — Chebyshev polynomial coefficients (Cai & Ng, SIGMOD 2004).
//
// SUBSTITUTION NOTE (see DESIGN.md §5): on a uniform discrete grid the
// Chebyshev approximation is the type-II discrete cosine transform (DCT-II
// evaluates Chebyshev polynomials at the discrete cosine nodes). We use the
// orthonormal DCT-II and keep the first M coefficients; orthonormality gives
// Parseval's identity, so the truncated-coefficient Euclidean distance is a
// PROVABLE lower bound of the raw Euclidean distance — the property CHEBY
// contributes in the paper's index experiments. Computed directly in O(Mn)
// (the paper's stated O(Nn)).

#include "reduction/representation.h"

namespace sapla {

/// \brief Truncated orthonormal DCT-II / Chebyshev coefficients.
class ChebyReducer : public Reducer {
 public:
  Method method() const override { return Method::kCheby; }
  Representation Reduce(const std::vector<double>& values,
                        size_t m) const override;
};

}  // namespace sapla

#endif  // SAPLA_REDUCTION_CHEBY_H_
