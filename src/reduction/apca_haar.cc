#include "reduction/apca_haar.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geom/haar.h"
#include "geom/line_fit.h"
#include "util/status.h"

namespace sapla {
namespace {

// Merges adjacent plateaus (constant ranges) with minimal SSE increase
// until `target` remain, then sets exact means. Plateau count is small
// (<= 3N+1), so a quadratic merge loop is cheap.
Representation PlateausToSegments(const std::vector<double>& values,
                                  std::vector<size_t> ends, size_t target) {
  PrefixFitter fitter(values);
  auto sse = [&](size_t s, size_t e) {
    const double s1 = fitter.RangeSum(s, e);
    const double s2 = fitter.RangeSquareSum(s, e);
    const double l = static_cast<double>(e - s + 1);
    const double v = s2 - s1 * s1 / l;
    return v > 0.0 ? v : 0.0;
  };
  auto start_of = [&](size_t i) {
    return i == 0 ? static_cast<size_t>(0) : ends[i - 1] + 1;
  };
  while (ends.size() > target) {
    size_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < ends.size(); ++i) {
      const size_t s = start_of(i);
      const double cost = sse(s, ends[i + 1]) - sse(s, ends[i]) -
                          sse(ends[i] + 1, ends[i + 1]);
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    ends.erase(ends.begin() + static_cast<ptrdiff_t>(best));
  }
  Representation rep;
  rep.method = Method::kApca;
  rep.n = values.size();
  for (size_t i = 0; i < ends.size(); ++i) {
    const size_t s = start_of(i);
    rep.segments.push_back(
        {0.0, fitter.RangeSum(s, ends[i]) /
                  static_cast<double>(ends[i] - s + 1),
         ends[i]});
  }
  return rep;
}

}  // namespace

Representation ApcaHaarReducer::Reduce(const std::vector<double>& values,
                                       size_t m) const {
  const size_t n = values.size();
  SAPLA_DCHECK(n >= 1);
  size_t target = SegmentsForBudget(Method::kApca, m);
  if (target > n) target = n;

  // 1. Pad (repeat last value) to a power of two and transform.
  const size_t padded_n = NextPowerOfTwo(n);
  std::vector<double> padded = values;
  padded.resize(padded_n, values.back());
  std::vector<double> coeffs = HaarTransform(padded);

  // 2. Keep the `target` largest-magnitude coefficients (always keep the
  //    overall average, index 0).
  std::vector<size_t> order(coeffs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::fabs(coeffs[a]) > std::fabs(coeffs[b]);
  });
  std::vector<bool> keep(coeffs.size(), false);
  keep[0] = true;
  size_t kept = 1;
  for (const size_t i : order) {
    if (kept >= target) break;
    if (!keep[i]) {
      keep[i] = true;
      ++kept;
    }
  }
  for (size_t i = 0; i < coeffs.size(); ++i)
    if (!keep[i]) coeffs[i] = 0.0;

  // 3. Reconstruct and extract plateau boundaries (truncated to n).
  const std::vector<double> rec = HaarInverse(coeffs);
  std::vector<size_t> ends;
  for (size_t t = 0; t + 1 < n; ++t)
    if (std::fabs(rec[t] - rec[t + 1]) > 1e-12) ends.push_back(t);
  ends.push_back(n - 1);

  // 4./5. Repair the segment count and set exact means. If truncation left
  // fewer plateaus than segments wanted, split the longest plateaus at
  // their midpoint first.
  while (ends.size() < target) {
    size_t longest = 0, longest_len = 0, prev = 0;
    for (size_t i = 0; i < ends.size(); ++i) {
      const size_t s = i == 0 ? 0 : ends[i - 1] + 1;
      if (ends[i] - s + 1 > longest_len) {
        longest_len = ends[i] - s + 1;
        longest = i;
        prev = s;
      }
    }
    if (longest_len < 2) break;
    ends.insert(ends.begin() + static_cast<ptrdiff_t>(longest),
                prev + longest_len / 2 - 1);
  }
  return PlateausToSegments(values, std::move(ends), target);
}

}  // namespace sapla
