#ifndef SAPLA_REDUCTION_APLA_H_
#define SAPLA_REDUCTION_APLA_H_

// APLA — Adaptive Piecewise Linear Approximation (Ljosa & Singh, ICDE 2007),
// as characterized in the SAPLA paper §2: dynamic programming over
//   w[m, t] = min_alpha ( w[alpha, t-1] + eps(alpha+1, m) )
// where eps is the max deviation of the range's least-squares line. APLA is
// the quality gold standard (guaranteed error bounds) and the main speed
// baseline: O(Nn^2) versus SAPLA's O(n(N + log n)).
//
// The max-deviation oracle eps(s, e) is evaluated on incremental convex
// hulls (geom/convex_hull.h) in O(log) per range, so building the full
// range-error table costs O(n^2 log n) and the DP O(Nn^2) — the bound the
// paper states. The table stores float to halve memory (n^2 entries).

#include "reduction/representation.h"

namespace sapla {

/// \brief Exact DP adaptive piecewise-linear approximation.
class AplaReducer : public Reducer {
 public:
  /// \param max_length guard against the O(n^2) error table: series longer
  /// than this are rejected by SAPLA_DCHECK (debug) / clamped table cost in
  /// release. Default 8192 keeps the table under 256 MiB.
  explicit AplaReducer(size_t max_length = 8192) : max_length_(max_length) {}

  Method method() const override { return Method::kApla; }
  Representation Reduce(const std::vector<double>& values,
                        size_t m) const override;

 private:
  size_t max_length_;
};

}  // namespace sapla

#endif  // SAPLA_REDUCTION_APLA_H_
