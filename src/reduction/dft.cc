#include "reduction/dft.h"

#include <cmath>

#include "util/status.h"

namespace sapla {

// Layout of rep.coeffs: [re_0, im_0, re_1, im_1, ...] for bins 0..K-1 with
// K = M/2 (im_0 is always 0 for real input but kept for regularity).

Representation DftReducer::Reduce(const std::vector<double>& values,
                                  size_t m) const {
  const size_t n = values.size();
  SAPLA_DCHECK(n >= 1);
  Representation rep;
  rep.method = Method::kDft;
  rep.n = n;
  const size_t num_bins = std::min(std::max<size_t>(1, m / 2), n);
  rep.coeffs.resize(2 * num_bins);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (size_t k = 0; k < num_bins; ++k) {
    double re = 0.0, im = 0.0;
    for (size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      re += values[t] * std::cos(angle);
      im += values[t] * std::sin(angle);
    }
    rep.coeffs[2 * k] = re * scale;
    rep.coeffs[2 * k + 1] = im * scale;
  }
  return rep;
}

double DftDist(const Representation& q, const Representation& c) {
  SAPLA_DCHECK(q.method == Method::kDft && c.method == Method::kDft);
  SAPLA_DCHECK(q.n == c.n);
  const size_t bins = std::min(q.coeffs.size(), c.coeffs.size()) / 2;
  const size_t n = q.n;
  double sum = 0.0;
  for (size_t k = 0; k < bins; ++k) {
    const double dre = q.coeffs[2 * k] - c.coeffs[2 * k];
    const double dim = q.coeffs[2 * k + 1] - c.coeffs[2 * k + 1];
    // Bin k in (0, n/2) represents bin n-k too (conjugate symmetry of real
    // signals), contributing the same energy again.
    const bool self_mirrored = k == 0 || 2 * k == n;
    sum += (self_mirrored ? 1.0 : 2.0) * (dre * dre + dim * dim);
  }
  return std::sqrt(sum);
}

}  // namespace sapla
