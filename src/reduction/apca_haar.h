#ifndef SAPLA_REDUCTION_APCA_HAAR_H_
#define SAPLA_REDUCTION_APCA_HAAR_H_

// APCA via the original Haar-wavelet construction (Keogh, Chakrabarti,
// Pazzani, Mehrotra, SIGMOD 2001 §4.2):
//
//   1. pad the series to a power of two and take the Haar DWT,
//   2. keep the N largest-magnitude (normalized) coefficients,
//   3. reconstruct — a piecewise-constant signal with <= 3N+1 plateaus,
//   4. merge adjacent plateaus with the lowest error increase until exactly
//      N segments remain, and
//   5. replace each segment value by the exact mean of the raw points
//      (the reconstruction's plateau values are only approximate means).
//
// Provided alongside the default bottom-up ApcaReducer as a construction
// ablation; both are O(n log n) and produce <v_i, r_i> segments.

#include "reduction/representation.h"

namespace sapla {

/// \brief Haar-based APCA (the paper-original construction).
class ApcaHaarReducer : public Reducer {
 public:
  Method method() const override { return Method::kApca; }
  Representation Reduce(const std::vector<double>& values,
                        size_t m) const override;
};

}  // namespace sapla

#endif  // SAPLA_REDUCTION_APCA_HAAR_H_
