#include "reduction/cheby.h"

#include <cmath>

#include "util/status.h"

namespace sapla {

Representation ChebyReducer::Reduce(const std::vector<double>& values,
                                    size_t m) const {
  SAPLA_DCHECK(values.size() >= 1);
  Representation rep;
  rep.method = Method::kCheby;
  rep.n = values.size();
  const size_t n = rep.n;
  const double nd = static_cast<double>(n);
  const size_t num_coeffs = std::min(SegmentsForBudget(Method::kCheby, m), n);
  rep.coeffs.resize(num_coeffs);
  for (size_t k = 0; k < num_coeffs; ++k) {
    double s = 0.0;
    for (size_t t = 0; t < n; ++t) {
      s += values[t] * std::cos(M_PI * (static_cast<double>(t) + 0.5) *
                                static_cast<double>(k) / nd);
    }
    rep.coeffs[k] = s * (k == 0 ? std::sqrt(1.0 / nd) : std::sqrt(2.0 / nd));
  }
  return rep;
}

}  // namespace sapla
