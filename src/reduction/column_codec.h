#ifndef SAPLA_REDUCTION_COLUMN_CODEC_H_
#define SAPLA_REDUCTION_COLUMN_CODEC_H_

// Pluggable column codecs for the representation store's persistence and
// cold tiers, plus the store quantizer that makes compression safe for
// GEMINI pruning.
//
// Three codec families (docs/ARCHITECTURE.md "Storage tiers & column
// codecs"):
//
//   kRawF64       f64 passthrough — 8 bytes/value, bit-exact. Fallback for
//                 columns with non-finite values or magnitudes too large
//                 to quantize exactly.
//   kDeltaFixedF64  fixed-point quantization: k_i = llround(v_i / step),
//                 stored as zigzag-varint deltas of the integer stream;
//                 decode is v'_i = k_i * step, so the max abs error is
//                 step / 2 and re-encoding a decoded column is lossless
//                 (idempotent — v4 save/load/save is byte-identical).
//   kDeltaVarInt  frame-of-reference / delta varint for the integer
//                 columns (offset tables, r endpoints, SAX symbols) —
//                 always lossless.
//
// Every encoded column is a self-contained blob:
//   [u32 codec id][u64 value count][u64 payload length][payload]
// so a decoder needs no out-of-band metadata and a corrupted codec id or
// count fails structurally (on top of the archive's CRCs).
//
// The quantizer (QuantizeStore) only ever touches the float columns: the
// segmentation (r), SAX symbols and offsets are preserved bit-for-bit.
// Because the original and quantized representation of a series share one
// segmentation, the triangle inequality in the method's filter norm gives
// a per-series bound on how far ANY query's filter value can move:
//
//   |LB(q, c') - LB(q, c)| <= LowerBoundDistance(c, c')  =: lb_slack
//
// which QuantizeStore computes with the production kernel
// (LowerBoundDistanceView) and stores per series. The search layer
// subtracts the slack before pruning (src/search/knn.cc, both backends),
// so compressed pruning can only be *looser* than full precision — never
// drops a true neighbor (tests/compressed_parity_test.cc).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "reduction/column_residency.h"
#include "reduction/representation_store.h"
#include "util/status.h"

namespace sapla {
namespace colcodec {

/// Persisted codec ids (v4 SAPLACOL column blobs). Values are stable.
enum class ColumnCodecId : uint32_t {
  kRawF64 = 0,
  kDeltaFixedF64 = 1,
  kDeltaVarInt = 2,
};

/// LEB128 varint append / bounds-checked read.
void PutVarint(std::string* out, uint64_t v);
bool GetVarint(const char** p, const char* end, uint64_t* v);

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Largest |k| the fixed-point codec will produce: well inside the range
/// where k * step -> llround(v / step) round-trips exactly, so encode of
/// an already-quantized column is provably lossless.
inline constexpr double kMaxQuantMagnitude = 1e15;

/// Appends one encoded f64 column. step > 0 selects kDeltaFixedF64 when
/// every value round-trips bit-exactly through k = llround(v / step),
/// v' = k * step (true by construction for QuantizeStore output); any
/// non-finite, out-of-magnitude or inexact value makes the whole column
/// fall back to kRawF64. Either way encode -> decode is bit-exact: the
/// codec layer is lossless, lossiness lives only in QuantizeStore (which
/// accounts for it via lb_slack).
void EncodeF64Column(const double* v, size_t count, double step,
                     std::string* out);

/// Appends one encoded integer column (always lossless kDeltaVarInt).
void EncodeIntColumn(const int64_t* v, size_t count, std::string* out);

/// \brief Bounds-checked cursor over encoded bytes (decode side).
struct Cursor {
  const char* p = nullptr;
  const char* end = nullptr;
  size_t remaining() const { return static_cast<size_t>(end - p); }
};

/// Decodes one f64 column blob; fails structurally on a bad codec id,
/// count mismatch with `expect_count`, or truncated payload. When the blob
/// is kDeltaFixedF64, *step_out (optional) receives its stored step.
Status DecodeF64Column(Cursor* c, size_t expect_count,
                       std::vector<double>* out, double* step_out);

/// Decodes one integer column blob into i64.
Status DecodeIntColumn(Cursor* c, size_t expect_count,
                       std::vector<int64_t>* out);

/// Encodes series [first, first + count) of a HOT store as one
/// self-contained frame blob (the v4 cold tier's unit of decode).
std::string EncodeStoreFrame(const RepresentationStore& store, size_t first,
                             size_t count);

/// Decodes one frame blob, re-validating structure (offset monotonicity,
/// strictly increasing endpoints, coverage of series_length) exactly like
/// RepresentationStore::FromColumns. first_id seeds DecodedFrame::first_id.
Status DecodeStoreFrame(const char* p, size_t len, size_t first_id,
                        size_t series_length,
                        storedetail::DecodedFrame* out);

}  // namespace colcodec

/// \brief Fixed-point-quantizes a hot store's float columns.
///
/// Returns a new hot store with identical structure (offsets, endpoints,
/// symbols bit-for-bit) whose a/b and transform-coefficient values are
/// rounded to multiples of the respective step, with quantized() == true
/// and the per-series lb_slack column filled in (see file comment for the
/// soundness argument). Values the codec cannot represent exactly
/// (non-finite, |v/step| > kMaxQuantMagnitude) pass through unchanged and
/// contribute 0 to the slack. Quantizing an already-quantized store with
/// the same steps is the identity (modulo store id).
Result<RepresentationStore> QuantizeStore(const RepresentationStore& store,
                                          const StoreCodecOptions& codec);

}  // namespace sapla

#endif  // SAPLA_REDUCTION_COLUMN_CODEC_H_
