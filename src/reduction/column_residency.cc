#include "reduction/column_residency.h"

#include <cstdio>
#include <cstdlib>

#include "reduction/column_codec.h"

namespace sapla {
namespace storedetail {

ColdColumns::~ColdColumns() {
  // Every cached frame's bytes are accounted on the shared budget (via
  // TryReserve or the force-accounted retained frame); hand them back.
  if (budget && cache_bytes_ > 0) budget->Release(cache_bytes_);
}

std::shared_ptr<const DecodedFrame> ColdColumns::Frame(size_t id) const {
  const size_t fi = frame_of(id);
  SAPLA_DCHECK(fi < frames.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(fi);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.frame;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Decode outside the lock. Two threads missing the same frame decode it
  // twice; the loser's copy is dropped when it finds the winner's entry —
  // both copies are identical and either is safe to read through a pin.
  const FrameMeta& meta = frames[fi];
  auto frame = std::make_shared<DecodedFrame>();
  const Status st = colcodec::DecodeStoreFrame(
      frames_base + meta.offset, static_cast<size_t>(meta.length),
      static_cast<size_t>(meta.first_id), series_length, frame.get());
  if (!st.ok() || frame->count != meta.count) {
    // The archive's CRCs were verified at open; a structural failure here
    // means the mapping changed underneath us or the directory lied.
    // Fail-stop rather than serve garbage bounds.
    std::fprintf(stderr,
                 "sapla: cold frame %zu decode failed after CRC-verified "
                 "open: %s\n",
                 fi, st.ok() ? "count mismatch" : st.ToString().c_str());
    std::abort();
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(fi);
  if (it != cache_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.frame;
  }
  const size_t frame_bytes = frame->bytes();
  lru_.push_front(fi);
  cache_[fi] = CacheEntry{frame, lru_.begin()};
  cache_bytes_ += frame_bytes;
  // Bounded cache: evict LRU frames past the local capacity — or past the
  // shared budget, which N stores draw on together — but always retain
  // one. Pinned readers keep evicted frames alive through their
  // shared_ptr.
  bool reserved = budget == nullptr || budget->TryReserve(frame_bytes);
  while ((cache_bytes_ > cache_capacity_bytes || !reserved) &&
         cache_.size() > 1) {
    const size_t victim = lru_.back();
    lru_.pop_back();
    auto vit = cache_.find(victim);
    SAPLA_DCHECK(vit != cache_.end());
    const size_t victim_bytes = vit->second.frame->bytes();
    cache_bytes_ -= victim_bytes;
    cache_.erase(vit);
    if (budget) {
      budget->Release(victim_bytes);
      if (!reserved) reserved = budget->TryReserve(frame_bytes);
    }
  }
  // The single frame a store must keep resident is accounted even when
  // the budget is saturated — overflow is what surfaces as pressure.
  if (!reserved) budget->ForceReserve(frame_bytes);
  return frame;
}

size_t ColdColumns::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_bytes_;
}

}  // namespace storedetail
}  // namespace sapla
