#include "reduction/representation_store.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <string>
#include <utility>

#include "reduction/column_residency.h"

namespace sapla {
namespace {

uint64_t NextStoreId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

StoreReadPin::StoreReadPin() = default;
StoreReadPin::~StoreReadPin() = default;
StoreReadPin::StoreReadPin(StoreReadPin&&) noexcept = default;
StoreReadPin& StoreReadPin::operator=(StoreReadPin&&) noexcept = default;

void StoreReadPin::Release() {
  frame_.reset();
  first_ = 0;
  count_ = 0;
}

RepresentationStore::RepresentationStore() : store_id_(NextStoreId()) {}

// Copies take a fresh store id: id() keys the serve result cache, and two
// live store objects must never alias an entry (the pre-fix defaulted copy
// duplicated the id — store_codec_test.cc's regression test).
RepresentationStore::RepresentationStore(const RepresentationStore& other)
    : method_(other.method_),
      n_(other.n_),
      alphabet_(other.alphabet_),
      num_series_(other.num_series_),
      seg_off_(other.seg_off_),
      coeff_off_(other.coeff_off_),
      sym_off_(other.sym_off_),
      a_(other.a_),
      b_(other.b_),
      r_(other.r_),
      coeffs_(other.coeffs_),
      symbols_(other.symbols_),
      quantized_(other.quantized_),
      codec_(other.codec_),
      lb_slack_(other.lb_slack_),
      max_lb_slack_(other.max_lb_slack_),
      cold_(other.cold_),
      store_id_(NextStoreId()) {}

RepresentationStore& RepresentationStore::operator=(
    const RepresentationStore& other) {
  if (this == &other) return *this;
  method_ = other.method_;
  n_ = other.n_;
  alphabet_ = other.alphabet_;
  num_series_ = other.num_series_;
  seg_off_ = other.seg_off_;
  coeff_off_ = other.coeff_off_;
  sym_off_ = other.sym_off_;
  a_ = other.a_;
  b_ = other.b_;
  r_ = other.r_;
  coeffs_ = other.coeffs_;
  symbols_ = other.symbols_;
  quantized_ = other.quantized_;
  codec_ = other.codec_;
  lb_slack_ = other.lb_slack_;
  max_lb_slack_ = other.max_lb_slack_;
  cold_ = other.cold_;
  store_id_ = NextStoreId();
  return *this;
}

size_t RepresentationStore::Append(const Representation& rep) {
  SAPLA_DCHECK(cold_ == nullptr);
  if (num_series_ == 0) {
    method_ = rep.method;
    n_ = rep.n;
    alphabet_ = rep.alphabet;
  } else {
    SAPLA_DCHECK(rep.method == method_ && rep.n == n_ &&
                 rep.alphabet == alphabet_);
  }
  SAPLA_DCHECK(rep.n <= std::numeric_limits<uint32_t>::max());
  for (const LinearSegment& seg : rep.segments) {
    a_.push_back(seg.a);
    b_.push_back(seg.b);
    r_.push_back(static_cast<uint32_t>(seg.r));
  }
  coeffs_.insert(coeffs_.end(), rep.coeffs.begin(), rep.coeffs.end());
  symbols_.insert(symbols_.end(), rep.symbols.begin(), rep.symbols.end());
  seg_off_.push_back(a_.size());
  coeff_off_.push_back(coeffs_.size());
  sym_off_.push_back(symbols_.size());
  return num_series_++;
}

Representation RepresentationStore::ToRepresentation(size_t id) const {
  SAPLA_DCHECK(id < num_series_);
  if (cold_ != nullptr) {
    StoreReadPin pin;
    const RepView v = view(id, &pin);
    Representation rep;
    rep.method = method_;
    rep.n = n_;
    rep.alphabet = alphabet_;
    for (size_t i = 0; i < v.num_segments(); ++i)
      rep.segments.push_back({v.seg_a(i), v.seg_b(i), v.seg_r(i)});
    rep.coeffs.assign(v.coeffs(), v.coeffs() + v.num_coeffs());
    rep.symbols.assign(v.symbols(), v.symbols() + v.num_symbols());
    return rep;
  }
  Representation rep;
  rep.method = method_;
  rep.n = n_;
  rep.alphabet = alphabet_;
  for (uint64_t i = seg_off_[id]; i < seg_off_[id + 1]; ++i)
    rep.segments.push_back({a_[i], b_[i], static_cast<size_t>(r_[i])});
  rep.coeffs.assign(coeffs_.begin() + static_cast<ptrdiff_t>(coeff_off_[id]),
                    coeffs_.begin() + static_cast<ptrdiff_t>(coeff_off_[id + 1]));
  rep.symbols.assign(symbols_.begin() + static_cast<ptrdiff_t>(sym_off_[id]),
                     symbols_.begin() + static_cast<ptrdiff_t>(sym_off_[id + 1]));
  return rep;
}

RepView RepresentationStore::ColdView(size_t id, StoreReadPin* pin) const {
  SAPLA_DCHECK(id < num_series_);
  SAPLA_DCHECK(pin != nullptr);
  const storedetail::DecodedFrame* f = pin->frame_.get();
  if (f == nullptr || id < pin->first_ || id >= pin->first_ + pin->count_) {
    pin->frame_ = cold_->Frame(id);
    pin->first_ = pin->frame_->first_id;
    pin->count_ = pin->frame_->count;
    f = pin->frame_.get();
  }
  const size_t local = id - f->first_id;
  RepView v;
  v.method_ = method_;
  v.n_ = n_;
  v.alphabet_ = alphabet_;
  const uint64_t s0 = f->seg_off[local];
  v.num_segments_ = static_cast<size_t>(f->seg_off[local + 1] - s0);
  v.a_ = f->a.data() + s0;
  v.b_ = f->b.data() + s0;
  v.r_ = f->r.data() + s0;
  const uint64_t c0 = f->coeff_off[local];
  v.num_coeffs_ = static_cast<size_t>(f->coeff_off[local + 1] - c0);
  v.coeffs_ = v.num_coeffs_ > 0 ? f->coeffs.data() + c0 : nullptr;
  const uint64_t y0 = f->sym_off[local];
  v.num_symbols_ = static_cast<size_t>(f->sym_off[local + 1] - y0);
  v.symbols_ = v.num_symbols_ > 0 ? f->symbols.data() + y0 : nullptr;
  return v;
}

void RepresentationStore::Reset() {
  method_ = Method::kSapla;
  n_ = 0;
  alphabet_ = 0;
  num_series_ = 0;
  seg_off_.assign(1, 0);
  coeff_off_.assign(1, 0);
  sym_off_.assign(1, 0);
  a_.clear();
  b_.clear();
  r_.clear();
  coeffs_.clear();
  symbols_.clear();
  quantized_ = false;
  codec_ = StoreCodecOptions();
  lb_slack_.clear();
  max_lb_slack_ = 0.0;
  cold_.reset();
  store_id_ = NextStoreId();
}

void RepresentationStore::Reserve(size_t num_series, size_t total_segments) {
  seg_off_.reserve(num_series + 1);
  coeff_off_.reserve(num_series + 1);
  sym_off_.reserve(num_series + 1);
  a_.reserve(total_segments);
  b_.reserve(total_segments);
  r_.reserve(total_segments);
}

void RepresentationStore::SetCodecState(const StoreCodecOptions& codec,
                                        std::vector<double> lb_slack) {
  SAPLA_DCHECK(lb_slack.empty() || lb_slack.size() == num_series_);
  codec_ = codec;
  lb_slack_ = std::move(lb_slack);
  max_lb_slack_ = 0.0;
  for (double s : lb_slack_) max_lb_slack_ = std::max(max_lb_slack_, s);
  quantized_ = !codec_.lossless() || max_lb_slack_ > 0.0;
  // Normalize: a lossless store with an all-zero slack column is the same
  // store as one with no slack column — keep one canonical form so
  // save/load round trips compare equal.
  if (!quantized_) lb_slack_.clear();
}

StoreFootprint RepresentationStore::footprint() const {
  StoreFootprint fp;
  fp.resident_bytes =
      (seg_off_.size() + coeff_off_.size() + sym_off_.size()) *
          sizeof(uint64_t) +
      (a_.size() + b_.size() + coeffs_.size() + lb_slack_.size()) *
          sizeof(double) +
      r_.size() * sizeof(uint32_t) + symbols_.size() * sizeof(int);
  if (cold_ != nullptr) {
    fp.resident_bytes += cold_->cached_bytes();
    if (cold_->file.mapped()) {
      fp.mapped_bytes = cold_->file.size();
    } else {
      fp.resident_bytes += cold_->file.size();  // heap fallback: be honest
    }
    fp.frame_hits = cold_->hits();
    fp.frame_misses = cold_->misses();
  }
  return fp;
}

RepresentationStore RepresentationStore::FromColdColumns(
    Method method, size_t n, size_t alphabet, size_t num_series,
    std::shared_ptr<storedetail::ColdColumns> cold,
    const StoreCodecOptions& codec, std::vector<double> lb_slack) {
  RepresentationStore store;
  store.method_ = method;
  store.n_ = n;
  store.alphabet_ = alphabet;
  store.num_series_ = num_series;
  store.seg_off_.clear();
  store.coeff_off_.clear();
  store.sym_off_.clear();
  store.cold_ = std::move(cold);
  store.SetCodecState(codec, std::move(lb_slack));
  return store;
}

Result<RepresentationStore> RepresentationStore::FromColumns(
    Method method, size_t n, size_t alphabet,
    std::vector<uint64_t> seg_offsets, std::vector<uint64_t> coeff_offsets,
    std::vector<uint64_t> symbol_offsets, std::vector<double> a,
    std::vector<double> b, std::vector<uint32_t> r, std::vector<double> coeffs,
    std::vector<int> symbols) {
  const auto bad = [](const std::string& msg) {
    return Status::InvalidArgument("representation store: " + msg);
  };
  if (seg_offsets.empty() || coeff_offsets.size() != seg_offsets.size() ||
      symbol_offsets.size() != seg_offsets.size())
    return bad("offset tables must share one size >= 1");
  const size_t num_series = seg_offsets.size() - 1;
  const auto check_offsets = [&](const std::vector<uint64_t>& off,
                                 size_t column_size, const char* name) {
    if (off.front() != 0)
      return bad(std::string(name) + " offsets must start at 0");
    for (size_t i = 0; i + 1 < off.size(); ++i)
      if (off[i] > off[i + 1])
        return bad(std::string(name) + " offsets must be nondecreasing");
    if (off.back() != column_size)
      return bad(std::string(name) + " offsets do not cover the column");
    return Status::OK();
  };
  if (a.size() != b.size() || a.size() != r.size())
    return bad("segment columns a/b/r must have equal sizes");
  Status s = check_offsets(seg_offsets, a.size(), "segment");
  if (!s.ok()) return s;
  s = check_offsets(coeff_offsets, coeffs.size(), "coefficient");
  if (!s.ok()) return s;
  s = check_offsets(symbol_offsets, symbols.size(), "symbol");
  if (!s.ok()) return s;
  // Per-series segment structure: endpoints strictly increasing and the
  // last one covering the series (what ParseRepresentations checks for v1).
  for (size_t i = 0; i < num_series; ++i) {
    const uint64_t lo = seg_offsets[i], hi = seg_offsets[i + 1];
    for (uint64_t j = lo + 1; j < hi; ++j)
      if (r[j - 1] >= r[j])
        return bad("segment endpoints must be strictly increasing (series " +
                   std::to_string(i) + ")");
    if (hi > lo && n > 0 && r[hi - 1] != n - 1)
      return bad("segments do not cover the series (series " +
                 std::to_string(i) + ")");
  }
  RepresentationStore store;
  store.method_ = method;
  store.n_ = n;
  store.alphabet_ = alphabet;
  store.num_series_ = num_series;
  store.seg_off_ = std::move(seg_offsets);
  store.coeff_off_ = std::move(coeff_offsets);
  store.sym_off_ = std::move(symbol_offsets);
  store.a_ = std::move(a);
  store.b_ = std::move(b);
  store.r_ = std::move(r);
  store.coeffs_ = std::move(coeffs);
  store.symbols_ = std::move(symbols);
  return store;
}

bool operator==(const RepresentationStore& x, const RepresentationStore& y) {
  SAPLA_DCHECK(x.cold_ == nullptr && y.cold_ == nullptr);
  return x.method_ == y.method_ && x.n_ == y.n_ && x.alphabet_ == y.alphabet_ &&
         x.num_series_ == y.num_series_ && x.seg_off_ == y.seg_off_ &&
         x.coeff_off_ == y.coeff_off_ && x.sym_off_ == y.sym_off_ &&
         x.a_ == y.a_ && x.b_ == y.b_ && x.r_ == y.r_ &&
         x.coeffs_ == y.coeffs_ && x.symbols_ == y.symbols_ &&
         x.quantized_ == y.quantized_ &&
         x.codec_.ab_step == y.codec_.ab_step &&
         x.codec_.coeff_step == y.codec_.coeff_step &&
         x.lb_slack_ == y.lb_slack_;
}

}  // namespace sapla
