#include "reduction/representation_store.h"

#include <atomic>
#include <limits>
#include <string>

namespace sapla {
namespace {

uint64_t NextStoreId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

RepresentationStore::RepresentationStore() : store_id_(NextStoreId()) {}

size_t RepresentationStore::Append(const Representation& rep) {
  if (num_series_ == 0) {
    method_ = rep.method;
    n_ = rep.n;
    alphabet_ = rep.alphabet;
  } else {
    SAPLA_DCHECK(rep.method == method_ && rep.n == n_ &&
                 rep.alphabet == alphabet_);
  }
  SAPLA_DCHECK(rep.n <= std::numeric_limits<uint32_t>::max());
  for (const LinearSegment& seg : rep.segments) {
    a_.push_back(seg.a);
    b_.push_back(seg.b);
    r_.push_back(static_cast<uint32_t>(seg.r));
  }
  coeffs_.insert(coeffs_.end(), rep.coeffs.begin(), rep.coeffs.end());
  symbols_.insert(symbols_.end(), rep.symbols.begin(), rep.symbols.end());
  seg_off_.push_back(a_.size());
  coeff_off_.push_back(coeffs_.size());
  sym_off_.push_back(symbols_.size());
  return num_series_++;
}

Representation RepresentationStore::ToRepresentation(size_t id) const {
  SAPLA_DCHECK(id < num_series_);
  Representation rep;
  rep.method = method_;
  rep.n = n_;
  rep.alphabet = alphabet_;
  for (uint64_t i = seg_off_[id]; i < seg_off_[id + 1]; ++i)
    rep.segments.push_back({a_[i], b_[i], static_cast<size_t>(r_[i])});
  rep.coeffs.assign(coeffs_.begin() + static_cast<ptrdiff_t>(coeff_off_[id]),
                    coeffs_.begin() + static_cast<ptrdiff_t>(coeff_off_[id + 1]));
  rep.symbols.assign(symbols_.begin() + static_cast<ptrdiff_t>(sym_off_[id]),
                     symbols_.begin() + static_cast<ptrdiff_t>(sym_off_[id + 1]));
  return rep;
}

void RepresentationStore::Reset() {
  method_ = Method::kSapla;
  n_ = 0;
  alphabet_ = 0;
  num_series_ = 0;
  seg_off_.assign(1, 0);
  coeff_off_.assign(1, 0);
  sym_off_.assign(1, 0);
  a_.clear();
  b_.clear();
  r_.clear();
  coeffs_.clear();
  symbols_.clear();
  store_id_ = NextStoreId();
}

void RepresentationStore::Reserve(size_t num_series, size_t total_segments) {
  seg_off_.reserve(num_series + 1);
  coeff_off_.reserve(num_series + 1);
  sym_off_.reserve(num_series + 1);
  a_.reserve(total_segments);
  b_.reserve(total_segments);
  r_.reserve(total_segments);
}

Result<RepresentationStore> RepresentationStore::FromColumns(
    Method method, size_t n, size_t alphabet,
    std::vector<uint64_t> seg_offsets, std::vector<uint64_t> coeff_offsets,
    std::vector<uint64_t> symbol_offsets, std::vector<double> a,
    std::vector<double> b, std::vector<uint32_t> r, std::vector<double> coeffs,
    std::vector<int> symbols) {
  const auto bad = [](const std::string& msg) {
    return Status::InvalidArgument("representation store: " + msg);
  };
  if (seg_offsets.empty() || coeff_offsets.size() != seg_offsets.size() ||
      symbol_offsets.size() != seg_offsets.size())
    return bad("offset tables must share one size >= 1");
  const size_t num_series = seg_offsets.size() - 1;
  const auto check_offsets = [&](const std::vector<uint64_t>& off,
                                 size_t column_size, const char* name) {
    if (off.front() != 0)
      return bad(std::string(name) + " offsets must start at 0");
    for (size_t i = 0; i + 1 < off.size(); ++i)
      if (off[i] > off[i + 1])
        return bad(std::string(name) + " offsets must be nondecreasing");
    if (off.back() != column_size)
      return bad(std::string(name) + " offsets do not cover the column");
    return Status::OK();
  };
  if (a.size() != b.size() || a.size() != r.size())
    return bad("segment columns a/b/r must have equal sizes");
  Status s = check_offsets(seg_offsets, a.size(), "segment");
  if (!s.ok()) return s;
  s = check_offsets(coeff_offsets, coeffs.size(), "coefficient");
  if (!s.ok()) return s;
  s = check_offsets(symbol_offsets, symbols.size(), "symbol");
  if (!s.ok()) return s;
  // Per-series segment structure: endpoints strictly increasing and the
  // last one covering the series (what ParseRepresentations checks for v1).
  for (size_t i = 0; i < num_series; ++i) {
    const uint64_t lo = seg_offsets[i], hi = seg_offsets[i + 1];
    for (uint64_t j = lo + 1; j < hi; ++j)
      if (r[j - 1] >= r[j])
        return bad("segment endpoints must be strictly increasing (series " +
                   std::to_string(i) + ")");
    if (hi > lo && n > 0 && r[hi - 1] != n - 1)
      return bad("segments do not cover the series (series " +
                 std::to_string(i) + ")");
  }
  RepresentationStore store;
  store.method_ = method;
  store.n_ = n;
  store.alphabet_ = alphabet;
  store.num_series_ = num_series;
  store.seg_off_ = std::move(seg_offsets);
  store.coeff_off_ = std::move(coeff_offsets);
  store.sym_off_ = std::move(symbol_offsets);
  store.a_ = std::move(a);
  store.b_ = std::move(b);
  store.r_ = std::move(r);
  store.coeffs_ = std::move(coeffs);
  store.symbols_ = std::move(symbols);
  return store;
}

bool operator==(const RepresentationStore& x, const RepresentationStore& y) {
  return x.method_ == y.method_ && x.n_ == y.n_ && x.alphabet_ == y.alphabet_ &&
         x.num_series_ == y.num_series_ && x.seg_off_ == y.seg_off_ &&
         x.coeff_off_ == y.coeff_off_ && x.sym_off_ == y.sym_off_ &&
         x.a_ == y.a_ && x.b_ == y.b_ && x.r_ == y.r_ &&
         x.coeffs_ == y.coeffs_ && x.symbols_ == y.symbols_;
}

}  // namespace sapla
