#ifndef SAPLA_REDUCTION_REPRESENTATION_H_
#define SAPLA_REDUCTION_REPRESENTATION_H_

// Common representation model for all dimensionality-reduction methods.
//
// Every method reduces a length-n series to M representation coefficients
// (Table 1 of the paper). Segment-based methods store <a_i, b_i, r_i>
// triples (constant methods use a_i = 0); CHEBY stores transform
// coefficients; SAX stores symbols. A single model lets distances, MBR
// adapters, trees and the experiment harness stay method-generic.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace sapla {

/// The eight methods compared in the paper (Table 1), plus the classic DFT
/// (GEMINI's original reduction — an extension, not part of Table 1).
enum class Method {
  kSapla = 0,
  kApla,
  kApca,
  kPla,
  kPaa,
  kPaalm,
  kCheby,
  kSax,
  kDft,
};

/// The paper's eight methods, in Table 1 order (excludes extensions).
std::vector<Method> AllMethods();

/// All implemented methods including extensions (currently + DFT).
std::vector<Method> AllMethodsExtended();

/// Display name ("SAPLA", "APLA", ...).
std::string MethodName(Method method);

/// Number of segments N for a coefficient budget M (Table 1):
/// N = M/3 for SAPLA/APLA, M/2 for APCA/PLA, M for PAA/PAALM/CHEBY/SAX.
size_t SegmentsForBudget(Method method, size_t m);

/// Coefficients consumed per segment (3, 2 or 1 — Table 1).
size_t CoefficientsPerSegment(Method method);

/// \brief One adaptive- or equal-length segment <a, b, r>.
///
/// `r` is the inclusive global index of the segment's last point
/// (Definition 3.2); the segment covers (prev_r, r]. Constant-value methods
/// (PAA/APCA/PAALM) set a = 0 and use b as the segment mean.
struct LinearSegment {
  double a = 0.0;
  double b = 0.0;
  size_t r = 0;
};

/// \brief A reduced representation of one time series.
struct Representation {
  Method method = Method::kSapla;
  size_t n = 0;  ///< original series length

  /// Segment methods (SAPLA/APLA/APCA/PLA/PAA/PAALM/SAX-PAA backing).
  std::vector<LinearSegment> segments;

  /// CHEBY: truncated orthonormal transform coefficients.
  std::vector<double> coeffs;

  /// SAX: one symbol per segment plus the alphabet size.
  std::vector<int> symbols;
  size_t alphabet = 0;

  size_t num_segments() const { return segments.size(); }

  /// Length of segment i (r_i - r_{i-1}).
  size_t segment_length(size_t i) const {
    return segments[i].r - (i == 0 ? static_cast<size_t>(0)
                                   : segments[i - 1].r + 1) +
           1;
  }

  /// Global index of segment i's first point.
  size_t segment_start(size_t i) const {
    return i == 0 ? 0 : segments[i - 1].r + 1;
  }

  /// \brief Reconstructs the full-length series C-check (Definition 3.3).
  std::vector<double> Reconstruct() const;

  /// Max deviation (Definition 3.4) of segment i against the original.
  double SegmentMaxDeviation(const std::vector<double>& original,
                             size_t i) const;

  /// Sum over segments of per-segment max deviations — the quantity the
  /// paper's Fig. 1 captions and Fig. 12a report. For coefficient methods
  /// (CHEBY) this is the global max deviation (single "segment").
  double SumMaxDeviation(const std::vector<double>& original) const;

  /// Global max deviation over all points.
  double GlobalMaxDeviation(const std::vector<double>& original) const;
};

class RepresentationStore;  // reduction/representation_store.h

/// \brief Interface implemented by every dimensionality-reduction method.
class Reducer {
 public:
  virtual ~Reducer() = default;

  virtual Method method() const = 0;
  std::string name() const { return MethodName(method()); }

  /// Reduces `values` to at most `m` representation coefficients.
  /// Requires values.size() >= 2 and m >= CoefficientsPerSegment(method()).
  virtual Representation Reduce(const std::vector<double>& values,
                                size_t m) const = 0;

  /// Reduces `values` and appends the result to the columnar `store`
  /// (reduction/representation_store.h); returns the new series id. The
  /// corpus append path — same preconditions as Reduce, plus the store's
  /// homogeneity contract (one (method, n, alphabet) per store).
  virtual size_t ReduceInto(const std::vector<double>& values, size_t m,
                            RepresentationStore* store) const;
};

/// Factory for any of the eight methods with default options.
std::unique_ptr<Reducer> MakeReducer(Method method);

/// \brief Replaces every segment's line with the minimax (Chebyshev-best)
/// fit of its raw range — the L-infinity-optimal polish once boundaries are
/// fixed. Strictly lowers (never raises) each segment's max deviation.
///
/// CAUTION: minimax lines are not least-squares projections, so Dist_LB's
/// lower-bound guarantee no longer applies to a refit representation; use
/// this for compression/deviation workloads, not for index filtering.
void MinimaxRefit(Representation* rep, const std::vector<double>& original);

}  // namespace sapla

#endif  // SAPLA_REDUCTION_REPRESENTATION_H_
