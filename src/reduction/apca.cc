#include "reduction/apca.h"

#include <queue>
#include <vector>

#include "util/status.h"

namespace sapla {
namespace {

// Constant-model SSE of a range given sum and square-sum: sum (c - mean)^2.
double ConstSse(double s1, double s2, size_t l) {
  const double ld = static_cast<double>(l);
  const double sse = s2 - s1 * s1 / ld;
  return sse > 0.0 ? sse : 0.0;
}

struct Node {
  size_t start, end;     // inclusive range
  double s1, s2;         // range sum / square-sum
  int prev, next;        // linked list; -1 = none
  bool alive = true;
  uint32_t version = 0;  // bumps on every merge touching this node
};

struct HeapEntry {
  double cost;  // SSE increase of merging node with its next neighbor
  int node;
  uint32_t version_self, version_next;
  bool operator>(const HeapEntry& o) const { return cost > o.cost; }
};

}  // namespace

Representation ApcaReducer::Reduce(const std::vector<double>& values,
                                   size_t m) const {
  const size_t n = values.size();
  SAPLA_DCHECK(n >= 1);
  size_t target = SegmentsForBudget(Method::kApca, m);
  if (target > n) target = n;

  // Initial segments of length 2 (odd tail gets length 3 or 1 handled by a
  // final 1-length node) — length-2 seeding matches the n/2 starting pool
  // the paper's complexity analysis assumes.
  std::vector<Node> nodes;
  for (size_t s = 0; s < n; s += 2) {
    Node nd;
    nd.start = s;
    nd.end = std::min(s + 1, n - 1);
    nd.s1 = values[s] + (nd.end > s ? values[nd.end] : 0.0);
    nd.s2 = values[s] * values[s] +
            (nd.end > s ? values[nd.end] * values[nd.end] : 0.0);
    nd.prev = static_cast<int>(nodes.size()) - 1;
    nd.next = -1;
    nodes.push_back(nd);
  }
  for (size_t i = 0; i + 1 < nodes.size(); ++i)
    nodes[i].next = static_cast<int>(i + 1);
  size_t alive = nodes.size();

  auto merge_cost = [&](int i) {
    const Node& a = nodes[i];
    const Node& b = nodes[a.next];
    const double merged = ConstSse(a.s1 + b.s1, a.s2 + b.s2,
                                   b.end - a.start + 1);
    const double separate = ConstSse(a.s1, a.s2, a.end - a.start + 1) +
                            ConstSse(b.s1, b.s2, b.end - b.start + 1);
    return merged - separate;
  };

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    heap.push({merge_cost(static_cast<int>(i)), static_cast<int>(i),
               nodes[i].version, nodes[i + 1].version});
  }

  while (alive > target && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    Node& a = nodes[top.node];
    if (!a.alive || a.next < 0) continue;
    Node& b = nodes[a.next];
    // Stale entries (either endpoint merged since push) are skipped.
    if (top.version_self != a.version || top.version_next != b.version)
      continue;

    // Merge b into a.
    a.end = b.end;
    a.s1 += b.s1;
    a.s2 += b.s2;
    a.next = b.next;
    if (b.next >= 0) nodes[b.next].prev = top.node;
    b.alive = false;
    ++a.version;
    --alive;

    if (a.next >= 0)
      heap.push({merge_cost(top.node), top.node, a.version,
                 nodes[a.next].version});
    if (a.prev >= 0)
      heap.push({merge_cost(a.prev), a.prev, nodes[a.prev].version,
                 a.version});
  }

  Representation rep;
  rep.method = Method::kApca;
  rep.n = n;
  for (int i = 0; i >= 0; i = nodes[i].next) {
    const Node& nd = nodes[i];
    rep.segments.push_back(
        {0.0, nd.s1 / static_cast<double>(nd.end - nd.start + 1), nd.end});
  }
  return rep;
}

}  // namespace sapla
