#ifndef SAPLA_REDUCTION_APCA_H_
#define SAPLA_REDUCTION_APCA_H_

// APCA — Adaptive Piecewise Constant Approximation
// (Keogh, Chakrabarti, Pazzani, Mehrotra, SIGMOD/TODS 2001-2002).
//
// Adaptive-length segments with constant value <v_i, r_i>, N = M/2.
// The original computes a Haar transform, keeps the largest coefficients and
// repairs the segment count; we implement the equivalent (and more direct)
// bottom-up merge: start from length-2 segments and repeatedly merge the
// adjacent pair whose merge adds the least squared error, until exactly N
// segments remain. A lazy-invalidation heap over a doubly linked segment
// list gives the paper's O(n log n).

#include "reduction/representation.h"

namespace sapla {

/// \brief Bottom-up adaptive piecewise-constant approximation.
class ApcaReducer : public Reducer {
 public:
  Method method() const override { return Method::kApca; }
  Representation Reduce(const std::vector<double>& values,
                        size_t m) const override;
};

}  // namespace sapla

#endif  // SAPLA_REDUCTION_APCA_H_
