#ifndef SAPLA_REDUCTION_COLUMN_RESIDENCY_H_
#define SAPLA_REDUCTION_COLUMN_RESIDENCY_H_

// Cold residency tier of the representation store.
//
// A cold store does not hold decoded arenas; it holds an mmap of a v4
// SAPLACOL archive (util/mmap_file.h) plus a frame directory. Series are
// grouped into fixed-size frames (kDefaultFrameSeries per frame); each
// frame is an independently decodable blob (reduction/column_codec.h).
// On first touch a frame is decoded into a DecodedFrame and kept in a
// bounded LRU cache; readers pin frames via StoreReadPin
// (representation_store.h), so an evicted frame stays alive until its
// last reader drops the pin — eviction only bounds the cache's own
// accounting, never invalidates outstanding views.
//
// Thread safety: the cache (map + LRU list + byte count) is guarded by
// `mu`; hit/miss counters are relaxed atomics so footprint sampling never
// takes the lock. Decoded frames are immutable after insertion.
//
// Budget sharing: when several shards each open a cold store, the local
// `cache_capacity_bytes` caps bound each shard independently — N shards
// could collectively hold N× the intended resident bytes. Constructing
// each ColdColumns with one shared ResourceBudget fixes that: every
// cached frame's bytes are reserved on the shared budget (evicting LRU
// frames across *this* store until the reservation fits; the one frame a
// store must retain is force-accounted) and released on eviction or
// destruction, so the fleet's decode caches are bounded globally.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "reduction/representation_store.h"
#include "util/mmap_file.h"
#include "util/resource_budget.h"

namespace sapla {
namespace storedetail {

/// Series per frame in a v4 archive (the serializer's default; the file
/// header records the actual value used).
inline constexpr size_t kDefaultFrameSeries = 256;

/// One decoded frame: frame-local offset tables (count + 1 entries each,
/// starting at 0) plus the decoded column slices for series
/// [first_id, first_id + count).
struct DecodedFrame {
  size_t first_id = 0;
  size_t count = 0;
  std::vector<uint64_t> seg_off, coeff_off, sym_off;
  std::vector<double> a, b, coeffs;
  std::vector<uint32_t> r;
  std::vector<int> symbols;

  /// Heap bytes held by the decoded columns (cache accounting).
  size_t bytes() const {
    return (seg_off.size() + coeff_off.size() + sym_off.size()) *
               sizeof(uint64_t) +
           (a.size() + b.size() + coeffs.size()) * sizeof(double) +
           r.size() * sizeof(uint32_t) + symbols.size() * sizeof(int) +
           sizeof(DecodedFrame);
  }
};

/// Directory entry for one encoded frame blob.
struct FrameMeta {
  uint64_t offset = 0;  ///< byte offset of the blob within the frame area
  uint64_t length = 0;  ///< blob length in bytes
  uint64_t first_id = 0;
  uint64_t count = 0;
};

/// \brief The cold tier: one mapping + directory + bounded decode cache.
struct ColdColumns {
  ColdColumns() = default;
  /// Cold store whose decode cache draws on a budget shared with other
  /// stores (the cross-shard frame-cache budget).
  explicit ColdColumns(std::shared_ptr<ResourceBudget> shared_budget)
      : budget(std::move(shared_budget)) {}
  ~ColdColumns();

  ColdColumns(const ColdColumns&) = delete;
  ColdColumns& operator=(const ColdColumns&) = delete;

  MmapFile file;
  /// Encoded frame area within the mapping (directory offsets are relative
  /// to this base).
  const char* frames_base = nullptr;
  size_t frames_size = 0;
  std::vector<FrameMeta> frames;
  /// Series per frame (every frame but the last has exactly this many).
  size_t frame_series = kDefaultFrameSeries;
  /// Series length n — frame decode re-validates coverage against it.
  size_t series_length = 0;
  /// Decode-cache capacity; at least one frame is always retained.
  size_t cache_capacity_bytes = 64u << 20;
  /// Optional shared frame-cache budget (see file comment). Null = the
  /// local capacity alone bounds this store.
  std::shared_ptr<ResourceBudget> budget;

  /// Fetches (decoding on miss) the frame containing series `id`. The
  /// archive's CRCs were verified at open, so a decode failure here is a
  /// broken invariant: fail-stop with a diagnostic.
  std::shared_ptr<const DecodedFrame> Frame(size_t id) const;

  size_t frame_of(size_t id) const { return id / frame_series; }

  /// Current decode-cache bytes (lock-taken snapshot).
  size_t cached_bytes() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct CacheEntry {
    std::shared_ptr<const DecodedFrame> frame;
    std::list<size_t>::iterator lru_it;
  };
  mutable std::mutex mu_;
  mutable std::unordered_map<size_t, CacheEntry> cache_;
  mutable std::list<size_t> lru_;  // front = most recently used
  mutable size_t cache_bytes_ = 0;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace storedetail
}  // namespace sapla

#endif  // SAPLA_REDUCTION_COLUMN_RESIDENCY_H_
