#include "reduction/sax.h"

#include <algorithm>

#include "reduction/paa.h"
#include "util/normal.h"
#include "util/status.h"

namespace sapla {

SaxReducer::SaxReducer(size_t alphabet_size)
    : alphabet_size_(alphabet_size), breakpoints_(SaxBreakpoints(alphabet_size)) {
  SAPLA_DCHECK(alphabet_size >= 2 && alphabet_size <= 256);
}

Representation SaxReducer::Reduce(const std::vector<double>& values,
                                  size_t m) const {
  // PAA stage reuses the shared equal-length segmentation.
  Representation rep = PaaReducer().Reduce(values, m);
  rep.method = Method::kSax;
  rep.alphabet = alphabet_size_;
  rep.symbols.resize(rep.segments.size());
  for (size_t i = 0; i < rep.segments.size(); ++i) {
    const double v = rep.segments[i].b;
    // Symbol = number of breakpoints below the PAA value.
    rep.symbols[i] = static_cast<int>(
        std::upper_bound(breakpoints_.begin(), breakpoints_.end(), v) -
        breakpoints_.begin());
  }
  return rep;
}

}  // namespace sapla
