#ifndef SAPLA_DISTANCE_DISTANCE_H_
#define SAPLA_DISTANCE_DISTANCE_H_

// Distance measures between reduced representations (paper §5.1).
//
// Dist_S (Eq. 12) is the exact L2 distance between two lines sharing a
// segment; Dist_PAR partitions two adaptive-length representations onto the
// union of their endpoints — after which every sub-segment pair shares
// endpoints — and sums Dist_S. Dist_LB projects the raw query onto the
// data's endpoints (the APCA-style bound, adapted to lines), and Dist_AE is
// the tight-but-not-lower-bounding approximation.

#include <vector>

#include "geom/line_fit.h"
#include "reduction/representation.h"

namespace sapla {

/// Eq. (12): sum over j in [0, l) of (q(j) - c(j))^2 for two lines in the
/// same local coordinates. Closed form, O(1).
double DistSSquared(const Line& q, const Line& c, size_t l);

/// Sorted union of the two representations' segment endpoints (Def. 5.1's R).
std::vector<size_t> UnionEndpoints(const Representation& a,
                                   const Representation& b);

/// \brief Re-cuts a segment representation at the given endpoints.
///
/// `endpoints` must be a sorted superset of the representation's own
/// endpoints (ending at n-1). Restricting a line to a sub-range keeps the
/// slope and shifts the intercept, so the partition is exact: the
/// partitioned representation reconstructs the identical series.
std::vector<LinearSegment> PartitionAt(const Representation& rep,
                                       const std::vector<size_t>& endpoints);

/// \brief Dist_PAR (Definition 5.1): the paper's lower-bounding distance for
/// adaptive-length representations.
///
/// Equals the exact Euclidean distance between the two reconstructed series
/// (property-tested), computed in O(N + N') instead of O(n).
double DistPar(const Representation& q, const Representation& c);

/// \brief Dist_LB: the raw query refit over the data representation's
/// endpoints, then summed with Dist_S. Guaranteed less tight than Dist_PAR
/// (paper §A.6). O(N) after the query's PrefixFitter is built.
double DistLb(const PrefixFitter& query_fitter, const Representation& c);

/// \brief Dist_AE: exact Euclidean distance between the raw query and the
/// data's reconstruction. Tight approximation, NOT a lower bound. O(n).
double DistAe(const std::vector<double>& query_raw, const Representation& c);

}  // namespace sapla

#endif  // SAPLA_DISTANCE_DISTANCE_H_
