#include "distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/status.h"

namespace sapla {

double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   size_t band) {
  SAPLA_DCHECK(a.size() == b.size() && !a.empty());
  const size_t n = a.size();
  const size_t w = std::min(band, n - 1);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Rolling two-row DP over the banded cost matrix.
  std::vector<double> prev(n, kInf), cur(n, kInf);
  for (size_t i = 0; i < n; ++i) {
    const size_t j_lo = i > w ? i - w : 0;
    const size_t j_hi = std::min(n - 1, i + w);
    std::fill(cur.begin(), cur.end(), kInf);
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double d = a[i] - b[j];
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, prev[j]);                  // up
        if (j > 0) best = std::min(best, cur[j - 1]);               // left
        if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);     // diag
      }
      cur[j] = best + d * d;
    }
    std::swap(prev, cur);
  }
  return std::sqrt(prev[n - 1]);
}

void DtwEnvelope(const std::vector<double>& series, size_t band,
                 std::vector<double>* lower, std::vector<double>* upper) {
  const size_t n = series.size();
  lower->assign(n, 0.0);
  upper->assign(n, 0.0);
  // Sliding-window min/max over [t - band, t + band] via monotonic index
  // deques (amortized O(1) per point).
  std::deque<size_t> min_q, max_q;
  size_t next_push = 0;
  for (size_t t = 0; t < n; ++t) {
    const size_t hi = std::min(n - 1, t + band);
    while (next_push <= hi) {
      while (!min_q.empty() && series[min_q.back()] >= series[next_push])
        min_q.pop_back();
      min_q.push_back(next_push);
      while (!max_q.empty() && series[max_q.back()] <= series[next_push])
        max_q.pop_back();
      max_q.push_back(next_push);
      ++next_push;
    }
    const size_t lo = t > band ? t - band : 0;
    while (min_q.front() < lo) min_q.pop_front();
    while (max_q.front() < lo) max_q.pop_front();
    (*lower)[t] = series[min_q.front()];
    (*upper)[t] = series[max_q.front()];
  }
}

double LbKeogh(const std::vector<double>& candidate,
               const std::vector<double>& query_lower,
               const std::vector<double>& query_upper) {
  SAPLA_DCHECK(candidate.size() == query_lower.size());
  SAPLA_DCHECK(candidate.size() == query_upper.size());
  double sum = 0.0;
  for (size_t t = 0; t < candidate.size(); ++t) {
    double gap = 0.0;
    if (candidate[t] > query_upper[t]) gap = candidate[t] - query_upper[t];
    if (candidate[t] < query_lower[t]) gap = query_lower[t] - candidate[t];
    sum += gap * gap;
  }
  return std::sqrt(sum);
}

KnnDtwResult DtwKnn(const Dataset& dataset, const std::vector<double>& query,
                    size_t k, size_t band) {
  SAPLA_DCHECK(dataset.size() > 0 && query.size() == dataset.length());
  std::vector<double> lower, upper;
  DtwEnvelope(query, band, &lower, &upper);

  // Order candidates by LB_Keogh so the k-NN bound tightens early.
  std::vector<std::pair<double, size_t>> by_lb;
  by_lb.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i)
    by_lb.emplace_back(LbKeogh(dataset.series[i].values, lower, upper), i);
  std::sort(by_lb.begin(), by_lb.end());

  KnnDtwResult result;
  std::vector<std::pair<double, size_t>> best;  // max at back
  for (const auto& [lb, id] : by_lb) {
    const double bound = best.size() < k
                             ? std::numeric_limits<double>::infinity()
                             : best.back().first;
    if (lb > bound) break;  // sorted LBs: everything after is pruned too
    const double d = DtwDistance(query, dataset.series[id].values, band);
    ++result.num_dtw_computations;
    if (d < bound || best.size() < k) {
      best.emplace_back(d, id);
      std::sort(best.begin(), best.end());
      if (best.size() > k) best.pop_back();
    }
  }
  result.neighbors = std::move(best);
  return result;
}

}  // namespace sapla
