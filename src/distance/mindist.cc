#include "distance/mindist.h"

#include <cmath>

#include "distance/distance.h"
#include "reduction/dft.h"
#include "util/normal.h"
#include "util/status.h"

namespace sapla {

double SaxMinDist(const Representation& q, const Representation& c) {
  SAPLA_DCHECK(q.method == Method::kSax && c.method == Method::kSax);
  SAPLA_DCHECK(q.alphabet == c.alphabet && q.n == c.n);
  SAPLA_DCHECK(q.symbols.size() == c.symbols.size());
  const std::vector<double> bp = SaxBreakpoints(q.alphabet);
  const double n = static_cast<double>(q.n);
  const double num_segments = static_cast<double>(q.symbols.size());
  double sum = 0.0;
  for (size_t i = 0; i < q.symbols.size(); ++i) {
    const int a = q.symbols[i];
    const int b = c.symbols[i];
    if (std::abs(a - b) <= 1) continue;  // adjacent regions contribute 0
    const int hi = std::max(a, b);
    const int lo = std::min(a, b);
    const double cell = bp[static_cast<size_t>(hi - 1)] -
                        bp[static_cast<size_t>(lo)];
    sum += cell * cell;
  }
  return std::sqrt(n / num_segments) * std::sqrt(sum);
}

double ChebyDist(const Representation& q, const Representation& c) {
  SAPLA_DCHECK(q.method == Method::kCheby && c.method == Method::kCheby);
  const size_t k = std::min(q.coeffs.size(), c.coeffs.size());
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double d = q.coeffs[i] - c.coeffs[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double LowerBoundDistance(const Representation& q, const Representation& c) {
  SAPLA_DCHECK(q.method == c.method);
  switch (q.method) {
    case Method::kCheby:
      return ChebyDist(q, c);
    case Method::kDft:
      return DftDist(q, c);
    case Method::kSax:
      return SaxMinDist(q, c);
    default:
      return DistPar(q, c);
  }
}

double FilterDistance(const PrefixFitter& query_fitter,
                      const Representation& q, const Representation& c) {
  SAPLA_DCHECK(q.method == c.method);
  switch (q.method) {
    case Method::kCheby:
      return ChebyDist(q, c);
    case Method::kDft:
      return DftDist(q, c);
    case Method::kSax:
      return SaxMinDist(q, c);
    default:
      return DistLb(query_fitter, c);
  }
}

}  // namespace sapla
