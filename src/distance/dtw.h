#ifndef SAPLA_DISTANCE_DTW_H_
#define SAPLA_DISTANCE_DTW_H_

// Dynamic Time Warping with Sakoe-Chiba band + LB_Keogh pruning.
//
// Extension module: the paper's evaluation is Euclidean, but its similarity
// search framing cites the UCR-DTW line of work (reference [20]); a
// production time-series library needs warping-invariant search. DTW here
// is the standard O(n * band) DP on squared point costs; LB_Keogh is the
// envelope lower bound enabling GEMINI-style filtering, and DtwKnn combines
// them into an exact k-NN with cascading pruning.

#include <cstddef>
#include <vector>

#include "ts/time_series.h"

namespace sapla {

/// \brief DTW distance (sqrt of summed squared costs along the optimal
/// warping path) between equal-length series under a Sakoe-Chiba band of
/// half-width `band` (band >= 0; band >= n-1 means unconstrained).
/// O(n * band) time, O(n) memory.
double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   size_t band);

/// Upper/lower warping envelope of `series` under band half-width `band`:
/// upper[t] = max(series[t-band .. t+band]), lower[t] = min(...).
/// O(n) via monotonic deques.
void DtwEnvelope(const std::vector<double>& series, size_t band,
                 std::vector<double>* lower, std::vector<double>* upper);

/// \brief LB_Keogh(query, candidate): distance from `candidate` to the
/// query's envelope. A true lower bound of DtwDistance(query, candidate)
/// at the same band. O(n).
double LbKeogh(const std::vector<double>& candidate,
               const std::vector<double>& query_lower,
               const std::vector<double>& query_upper);

struct KnnDtwResult {
  std::vector<std::pair<double, size_t>> neighbors;
  size_t num_dtw_computations = 0;
};

/// \brief Exact DTW k-NN over a dataset with LB_Keogh cascading pruning.
///
/// Returns ascending (dtw distance, id) pairs; num_dtw_computations counts
/// full DTW evaluations (the pruning-power analog under warping).
KnnDtwResult DtwKnn(const Dataset& dataset, const std::vector<double>& query,
                    size_t k, size_t band);

}  // namespace sapla

#endif  // SAPLA_DISTANCE_DTW_H_
