#ifndef SAPLA_DISTANCE_MINDIST_H_
#define SAPLA_DISTANCE_MINDIST_H_

// Method-generic lower-bounding distance between two representations.
//
// This is the distance the GEMINI filter step and both trees use to prune:
//   SAPLA / APLA / APCA  -> Dist_PAR (paper §5.1)
//   PLA / PAA / PAALM    -> Dist_PAR degenerates to the classic Dist_PLA /
//                           PAA lower bound (identical endpoints, Eq. 12)
//   CHEBY                -> L2 over coefficients (Parseval lower bound)
//   SAX                  -> classic MINDIST over breakpoint gaps

#include "geom/line_fit.h"
#include "reduction/representation.h"

namespace sapla {

/// Lower-bounding distance between a query representation and a data
/// representation of the SAME method. Dispatches per method as above.
double LowerBoundDistance(const Representation& q, const Representation& c);

/// Filter distance used at the refinement step when the RAW query is
/// available: Dist_LB (a rigorous lower bound — the raw query is projected
/// onto the data's own breakpoints) for segment methods, the coefficient /
/// MINDIST bounds for CHEBY and SAX. `query_fitter` must wrap the raw query.
double FilterDistance(const PrefixFitter& query_fitter,
                      const Representation& q, const Representation& c);

/// SAX MINDIST (Lin et al. 2007): sqrt(n/N) * sqrt(sum cell(q_i, c_i)^2)
/// where cell is the gap between the symbols' nearest breakpoints (0 for
/// adjacent symbols).
double SaxMinDist(const Representation& q, const Representation& c);

/// CHEBY / coefficient-space distance: L2 over the shared coefficients —
/// a true lower bound of the Euclidean distance by orthonormality.
double ChebyDist(const Representation& q, const Representation& c);

}  // namespace sapla

#endif  // SAPLA_DISTANCE_MINDIST_H_
