#ifndef SAPLA_DISTANCE_KERNELS_H_
#define SAPLA_DISTANCE_KERNELS_H_

// View-based and batched distance kernels over the columnar corpus layout.
//
// These are the RepView counterparts of distance/distance.h and
// distance/mindist.h, written for the filter loop's actual access pattern:
// one query against many stored series. Two things make them faster than
// the per-pair Representation kernels while producing bit-identical
// values (tests/distance_kernels_test.cc):
//
//   * Dist_PAR walks the two endpoint lists with a single merge loop and a
//     caller-provided merged-endpoint scratch buffer, instead of
//     materializing UnionEndpoints + two PartitionAt vectors per pair. Each
//     sub-segment's re-cut line uses the identical expression
//     (a, a * offset + b), summed in the identical ascending-endpoint
//     order, so every term — and therefore the sum — matches DistPar
//     bit for bit.
//   * The batched entry points (one query vs. `count` stored series) reuse
//     the scratch across the whole batch and read the store's contiguous
//     columns, so the loop does arithmetic instead of allocator traffic.
//     bench/bench_distance_kernels.cc tracks the throughput ratio.
//
// DistanceScratch also caches the SAX breakpoint table per alphabet so the
// MINDIST kernel does not recompute quantiles per pair.

#include <cstddef>
#include <vector>

#include "geom/line_fit.h"
#include "reduction/representation_store.h"

namespace sapla {

/// \brief Reusable buffers for the kernels. One per thread / per query;
/// never shared concurrently. Cleared lazily — callers just pass it along.
struct DistanceScratch {
  /// Merged endpoint buffer for the Dist_PAR partition (Def. 5.1's R).
  std::vector<size_t> endpoints;
  /// SAX breakpoints cached per alphabet size.
  std::vector<double> sax_breakpoints;
  size_t sax_alphabet = 0;
};

/// Dist_PAR (Definition 5.1) over views; bit-identical to
/// DistPar(const Representation&, const Representation&).
double DistParView(const RepView& q, const RepView& c,
                   DistanceScratch* scratch);
/// Convenience overload owning a local scratch (allocates once per call).
double DistParView(const RepView& q, const RepView& c);

/// Dist_LB over a view; bit-identical to DistLb(fitter, Representation).
double DistLbView(const PrefixFitter& query_fitter, const RepView& c);

/// CHEBY coefficient-space distance (cf. ChebyDist).
double ChebyDistView(const RepView& q, const RepView& c);

/// DFT conjugate-mirror coefficient distance (cf. DftDist).
double DftDistView(const RepView& q, const RepView& c);

/// SAX MINDIST (cf. SaxMinDist); `scratch` caches the breakpoint table.
double SaxMinDistView(const RepView& q, const RepView& c,
                      DistanceScratch* scratch);

/// Method-generic lower bound between two views of the SAME method; the
/// RepView counterpart of LowerBoundDistance (distance/mindist.h).
double LowerBoundDistanceView(const RepView& q, const RepView& c,
                              DistanceScratch* scratch);

/// Filter distance when the RAW query is available; the RepView
/// counterpart of FilterDistance (distance/mindist.h).
double FilterDistanceView(const PrefixFitter& query_fitter, const RepView& q,
                          const RepView& c, DistanceScratch* scratch);

/// \brief Batched one-query-vs-many filter distance over a store:
/// out[j] = FilterDistanceView(query_fitter, q, store[ids[j]], scratch).
/// `ids == nullptr` scans ids 0 .. count-1. The scratch is reused across
/// the whole batch; `out` must hold `count` doubles.
void FilterDistanceBatch(const PrefixFitter& query_fitter, const RepView& q,
                         const RepresentationStore& store, const size_t* ids,
                         size_t count, double* out, DistanceScratch* scratch);

/// Batched one-query-vs-many lower bound (Dist_PAR family):
/// out[j] = LowerBoundDistanceView(q, store[ids[j]], scratch).
void LowerBoundDistanceBatch(const RepView& q, const RepresentationStore& store,
                             const size_t* ids, size_t count, double* out,
                             DistanceScratch* scratch);

}  // namespace sapla

#endif  // SAPLA_DISTANCE_KERNELS_H_
