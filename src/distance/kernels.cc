#include "distance/kernels.h"

#include <cmath>

#include "distance/distance.h"
#include "util/normal.h"
#include "util/status.h"

namespace sapla {
namespace {

const std::vector<double>& CachedBreakpoints(size_t alphabet,
                                             DistanceScratch* scratch) {
  if (scratch->sax_alphabet != alphabet) {
    scratch->sax_breakpoints = SaxBreakpoints(alphabet);
    scratch->sax_alphabet = alphabet;
  }
  return scratch->sax_breakpoints;
}

// Segment-column accessors: the AoS-vs-SoA layout branch is resolved ONCE
// per pair (per batch, for the batched kernels) by instantiating the core
// loops on one of these, instead of branching on every field read.
struct AosSegs {
  const LinearSegment* s;
  double a(size_t i) const { return s[i].a; }
  double b(size_t i) const { return s[i].b; }
  size_t r(size_t i) const { return s[i].r; }
};

struct SoaSegs {
  const double* a_;
  const double* b_;
  const uint32_t* r_;
  double a(size_t i) const { return a_[i]; }
  double b(size_t i) const { return b_[i]; }
  size_t r(size_t i) const { return static_cast<size_t>(r_[i]); }
};

// Dist_PAR core over any pair of layouts. Phase 1 merges both sorted
// endpoint lists into the reusable buffer — the same sorted union
// UnionEndpoints materializes. Phase 2 walks both representations over the
// merged cuts; each re-cut line is (a, a * offset + b) exactly as
// PartitionAt emits it, and the terms are summed in the same ascending
// order, so the result is bit-identical to DistPar over the equivalent
// Representations.
template <typename QSegs, typename CSegs>
double DistParCore(const QSegs& q, size_t nq, const CSegs& c, size_t nc,
                   DistanceScratch* scratch) {
  std::vector<size_t>& r = scratch->endpoints;
  r.clear();
  {
    size_t i = 0, j = 0;
    while (i < nq || j < nc) {
      const size_t ri = i < nq ? q.r(i) : static_cast<size_t>(-1);
      const size_t rj = j < nc ? c.r(j) : static_cast<size_t>(-1);
      const size_t e = ri < rj ? ri : rj;
      r.push_back(e);
      if (ri == e) ++i;
      if (rj == e) ++j;
    }
  }
  double sum = 0.0;
  size_t start = 0;
  size_t iq = 0, ic = 0;
  size_t q_start = 0, c_start = 0;  // segment_start of the current sources
  for (const size_t e : r) {
    const double q_off = static_cast<double>(start - q_start);
    const double c_off = static_cast<double>(start - c_start);
    const Line ql{q.a(iq), q.a(iq) * q_off + q.b(iq)};
    const Line cl{c.a(ic), c.a(ic) * c_off + c.b(ic)};
    sum += DistSSquared(ql, cl, e - start + 1);
    if (e == q.r(iq)) {
      ++iq;
      q_start = e + 1;
    }
    if (e == c.r(ic)) {
      ++ic;
      c_start = e + 1;
    }
    start = e + 1;
  }
  return std::sqrt(sum);
}

// Dispatches one view's layout, passing the resolved accessor to `fn`.
template <typename Fn>
decltype(auto) WithSegs(const RepView& v, Fn&& fn) {
  if (const LinearSegment* segs = v.aos_segments()) return fn(AosSegs{segs});
  return fn(SoaSegs{v.soa_a(), v.soa_b(), v.soa_r()});
}

}  // namespace

double DistParView(const RepView& q, const RepView& c,
                   DistanceScratch* scratch) {
  SAPLA_DCHECK(q.n() == c.n());
  return WithSegs(q, [&](const auto& qs) {
    return WithSegs(c, [&](const auto& cs) {
      return DistParCore(qs, q.num_segments(), cs, c.num_segments(), scratch);
    });
  });
}

double DistParView(const RepView& q, const RepView& c) {
  DistanceScratch scratch;
  return DistParView(q, c, &scratch);
}

double DistLbView(const PrefixFitter& query_fitter, const RepView& c) {
  SAPLA_DCHECK(query_fitter.size() == c.n());
  // Mirrors DistLb (distance/distance.cc): project the raw query onto the
  // data's endpoints in the method's function space. The AoS-vs-SoA layout
  // branch is hoisted out of the loop — this runs once per corpus entry on
  // every query, and the per-access branch costs ~20% at typical budgets.
  const Method method = c.method();
  const bool constant_model =
      method == Method::kApca || method == Method::kPaa ||
      method == Method::kPaalm || method == Method::kSax;
  double sum = 0.0;
  size_t start = 0;
  const auto accumulate = [&](double ca, double cb, size_t r) {
    const size_t l = r - start + 1;
    Line ql;
    if (constant_model) {
      ql = Line{0.0, query_fitter.RangeSum(start, r) / static_cast<double>(l)};
    } else {
      ql = query_fitter.Fit(start, r);
    }
    const Line cl{ca, cb};
    sum += DistSSquared(ql, cl, l);
    start = r + 1;
  };
  const size_t num_segments = c.num_segments();
  if (const LinearSegment* segs = c.aos_segments()) {
    for (size_t i = 0; i < num_segments; ++i)
      accumulate(segs[i].a, segs[i].b, segs[i].r);
  } else {
    const double* a = c.soa_a();
    const double* b = c.soa_b();
    const uint32_t* r = c.soa_r();
    for (size_t i = 0; i < num_segments; ++i)
      accumulate(a[i], b[i], static_cast<size_t>(r[i]));
  }
  return std::sqrt(sum);
}

double ChebyDistView(const RepView& q, const RepView& c) {
  const size_t k = std::min(q.num_coeffs(), c.num_coeffs());
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double d = q.coeffs()[i] - c.coeffs()[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double DftDistView(const RepView& q, const RepView& c) {
  SAPLA_DCHECK(q.n() == c.n());
  const size_t bins = std::min(q.num_coeffs(), c.num_coeffs()) / 2;
  const size_t n = q.n();
  double sum = 0.0;
  for (size_t k = 0; k < bins; ++k) {
    const double dre = q.coeffs()[2 * k] - c.coeffs()[2 * k];
    const double dim = q.coeffs()[2 * k + 1] - c.coeffs()[2 * k + 1];
    const bool self_mirrored = k == 0 || 2 * k == n;
    sum += (self_mirrored ? 1.0 : 2.0) * (dre * dre + dim * dim);
  }
  return std::sqrt(sum);
}

double SaxMinDistView(const RepView& q, const RepView& c,
                      DistanceScratch* scratch) {
  SAPLA_DCHECK(q.method() == Method::kSax && c.method() == Method::kSax);
  SAPLA_DCHECK(q.alphabet() == c.alphabet() && q.n() == c.n());
  SAPLA_DCHECK(q.num_symbols() == c.num_symbols());
  const std::vector<double>& bp = CachedBreakpoints(q.alphabet(), scratch);
  const double n = static_cast<double>(q.n());
  const double num_segments = static_cast<double>(q.num_symbols());
  double sum = 0.0;
  for (size_t i = 0; i < q.num_symbols(); ++i) {
    const int a = q.symbols()[i];
    const int b = c.symbols()[i];
    if (std::abs(a - b) <= 1) continue;  // adjacent regions contribute 0
    const int hi = std::max(a, b);
    const int lo = std::min(a, b);
    const double cell =
        bp[static_cast<size_t>(hi - 1)] - bp[static_cast<size_t>(lo)];
    sum += cell * cell;
  }
  return std::sqrt(n / num_segments) * std::sqrt(sum);
}

double LowerBoundDistanceView(const RepView& q, const RepView& c,
                              DistanceScratch* scratch) {
  SAPLA_DCHECK(q.method() == c.method());
  switch (q.method()) {
    case Method::kCheby:
      return ChebyDistView(q, c);
    case Method::kDft:
      return DftDistView(q, c);
    case Method::kSax:
      return SaxMinDistView(q, c, scratch);
    default:
      return DistParView(q, c, scratch);
  }
}

double FilterDistanceView(const PrefixFitter& query_fitter, const RepView& q,
                          const RepView& c, DistanceScratch* scratch) {
  SAPLA_DCHECK(q.method() == c.method());
  switch (q.method()) {
    case Method::kCheby:
      return ChebyDistView(q, c);
    case Method::kDft:
      return DftDistView(q, c);
    case Method::kSax:
      return SaxMinDistView(q, c, scratch);
    default:
      return DistLbView(query_fitter, c);
  }
}

void FilterDistanceBatch(const PrefixFitter& query_fitter, const RepView& q,
                         const RepresentationStore& store, const size_t* ids,
                         size_t count, double* out, DistanceScratch* scratch) {
  if (count == 0) return;
  if (store.cold()) {
    // Cold store: the columns are not resident, so stream through pinned
    // frame views instead. Ascending ids touch each decoded frame once
    // (one decode per frame of series), and the per-view kernel computes
    // the identical expression in the identical order, so out[j] is
    // bit-identical to the hot column walk below.
    StoreReadPin pin;
    for (size_t j = 0; j < count; ++j) {
      const size_t id = ids ? ids[j] : j;
      out[j] = FilterDistanceView(query_fitter, q, store.view(id, &pin),
                                  scratch);
    }
    return;
  }
  const Method method = store.method();
  const bool segment_family = method != Method::kCheby &&
                              method != Method::kDft && method != Method::kSax;
  if (!segment_family) {
    for (size_t j = 0; j < count; ++j) {
      const size_t id = ids ? ids[j] : j;
      out[j] = FilterDistanceView(query_fitter, q, store.view(id), scratch);
    }
    return;
  }
  // Segment methods take the Dist_LB branch; the store is homogeneous, so
  // the whole batch walks the contiguous columns directly — no per-entry
  // RepView construction, no dispatch. The accumulation is the exact
  // DistLbView expression in the exact order, so out[j] stays bit-identical
  // to the per-pair kernel.
  const bool constant_model = method == Method::kApca ||
                              method == Method::kPaa ||
                              method == Method::kPaalm;
  const uint64_t* off = store.seg_offsets().data();
  const double* a = store.a_column().data();
  const double* b = store.b_column().data();
  const uint32_t* r = store.r_column().data();
  for (size_t j = 0; j < count; ++j) {
    const size_t id = ids ? ids[j] : j;
    double sum = 0.0;
    size_t start = 0;
    for (uint64_t k = off[id]; k < off[id + 1]; ++k) {
      const size_t rr = static_cast<size_t>(r[k]);
      const size_t l = rr - start + 1;
      Line ql;
      if (constant_model) {
        ql = Line{0.0,
                  query_fitter.RangeSum(start, rr) / static_cast<double>(l)};
      } else {
        ql = query_fitter.Fit(start, rr);
      }
      const Line cl{a[k], b[k]};
      sum += DistSSquared(ql, cl, l);
      start = rr + 1;
    }
    out[j] = std::sqrt(sum);
  }
}

void LowerBoundDistanceBatch(const RepView& q, const RepresentationStore& store,
                             const size_t* ids, size_t count, double* out,
                             DistanceScratch* scratch) {
  if (count == 0) return;
  if (store.cold()) {
    // Frame-decode path, same rationale as FilterDistanceBatch above.
    StoreReadPin pin;
    for (size_t j = 0; j < count; ++j) {
      const size_t id = ids ? ids[j] : j;
      out[j] = LowerBoundDistanceView(q, store.view(id, &pin), scratch);
    }
    return;
  }
  const Method method = store.method();
  const bool segment_family = method != Method::kCheby &&
                              method != Method::kDft && method != Method::kSax;
  if (!segment_family) {
    for (size_t j = 0; j < count; ++j) {
      const size_t id = ids ? ids[j] : j;
      out[j] = LowerBoundDistanceView(q, store.view(id), scratch);
    }
    return;
  }
  // Segment methods take the Dist_PAR branch; resolve the query's layout
  // once for the whole batch and feed each corpus slice straight from the
  // contiguous columns — no per-entry RepView construction.
  const uint64_t* off = store.seg_offsets().data();
  const double* a = store.a_column().data();
  const double* b = store.b_column().data();
  const uint32_t* r = store.r_column().data();
  const size_t nq = q.num_segments();
  WithSegs(q, [&](const auto& qs) {
    for (size_t j = 0; j < count; ++j) {
      const size_t id = ids ? ids[j] : j;
      const uint64_t s0 = off[id];
      out[j] = DistParCore(qs, nq, SoaSegs{a + s0, b + s0, r + s0},
                           static_cast<size_t>(off[id + 1] - s0), scratch);
    }
  });
}

}  // namespace sapla
