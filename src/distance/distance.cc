#include "distance/distance.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace sapla {

double DistSSquared(const Line& q, const Line& c, size_t l) {
  const double ld = static_cast<double>(l);
  const double da = q.a - c.a;
  const double db = q.b - c.b;
  // sum_{j=0}^{l-1} (da*j + db)^2 expanded with sum j and sum j^2.
  return ld * (ld - 1.0) * (2.0 * ld - 1.0) / 6.0 * da * da +
         ld * (ld - 1.0) * da * db + ld * db * db;
}

std::vector<size_t> UnionEndpoints(const Representation& a,
                                   const Representation& b) {
  SAPLA_DCHECK(a.n == b.n);
  std::vector<size_t> r;
  r.reserve(a.segments.size() + b.segments.size());
  for (const auto& s : a.segments) r.push_back(s.r);
  for (const auto& s : b.segments) r.push_back(s.r);
  std::sort(r.begin(), r.end());
  r.erase(std::unique(r.begin(), r.end()), r.end());
  return r;
}

std::vector<LinearSegment> PartitionAt(const Representation& rep,
                                       const std::vector<size_t>& endpoints) {
  std::vector<LinearSegment> out;
  out.reserve(endpoints.size());
  size_t seg = 0;
  size_t start = 0;  // global start of the current output sub-segment
  for (const size_t r : endpoints) {
    SAPLA_DCHECK(seg < rep.segments.size() && r <= rep.segments[seg].r);
    // The source segment's line evaluated from the sub-segment's start:
    // same slope, intercept advanced by the offset into the segment.
    const LinearSegment& src = rep.segments[seg];
    const size_t src_start = rep.segment_start(seg);
    const double offset = static_cast<double>(start - src_start);
    out.push_back({src.a, src.a * offset + src.b, r});
    if (r == src.r) ++seg;
    start = r + 1;
  }
  return out;
}

double DistPar(const Representation& q, const Representation& c) {
  SAPLA_DCHECK(q.n == c.n);
  const std::vector<size_t> r = UnionEndpoints(q, c);
  const std::vector<LinearSegment> qp = PartitionAt(q, r);
  const std::vector<LinearSegment> cp = PartitionAt(c, r);
  double sum = 0.0;
  size_t start = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    const Line ql{qp[i].a, qp[i].b};
    const Line cl{cp[i].a, cp[i].b};
    sum += DistSSquared(ql, cl, r[i] - start + 1);
    start = r[i] + 1;
  }
  return std::sqrt(sum);
}

double DistLb(const PrefixFitter& query_fitter, const Representation& c) {
  SAPLA_DCHECK(query_fitter.size() == c.n);
  // "Project" the raw query onto the data's endpoints, O(1) per segment via
  // the prefix sums. The projection model matches the method's function
  // space — lines for the linear methods, constants (segment means) for the
  // constant-value ones — so that the data's stored coefficients are the
  // projection of the data itself and ||P(Q) - P(C)|| <= ||Q - C|| holds.
  const bool constant_model =
      c.method == Method::kApca || c.method == Method::kPaa ||
      c.method == Method::kPaalm || c.method == Method::kSax;
  double sum = 0.0;
  size_t start = 0;
  for (const auto& seg : c.segments) {
    const size_t l = seg.r - start + 1;
    Line ql;
    if (constant_model) {
      ql = Line{0.0, query_fitter.RangeSum(start, seg.r) /
                         static_cast<double>(l)};
    } else {
      ql = query_fitter.Fit(start, seg.r);
    }
    const Line cl{seg.a, seg.b};
    sum += DistSSquared(ql, cl, l);
    start = seg.r + 1;
  }
  return std::sqrt(sum);
}

double DistAe(const std::vector<double>& query_raw, const Representation& c) {
  SAPLA_DCHECK(query_raw.size() == c.n);
  const std::vector<double> rec = c.Reconstruct();
  double sum = 0.0;
  for (size_t t = 0; t < query_raw.size(); ++t) {
    const double d = query_raw[t] - rec[t];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace sapla
