file(REMOVE_RECURSE
  "../bench/bench_fig15_16_tree_stats"
  "../bench/bench_fig15_16_tree_stats.pdb"
  "CMakeFiles/bench_fig15_16_tree_stats.dir/bench_fig15_16_tree_stats.cc.o"
  "CMakeFiles/bench_fig15_16_tree_stats.dir/bench_fig15_16_tree_stats.cc.o.d"
  "CMakeFiles/bench_fig15_16_tree_stats.dir/harness_common.cc.o"
  "CMakeFiles/bench_fig15_16_tree_stats.dir/harness_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_16_tree_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
