# Empty dependencies file for bench_fig15_16_tree_stats.
# This may be replaced when dependencies are built.
