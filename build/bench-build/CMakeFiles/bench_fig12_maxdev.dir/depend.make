# Empty dependencies file for bench_fig12_maxdev.
# This may be replaced when dependencies are built.
