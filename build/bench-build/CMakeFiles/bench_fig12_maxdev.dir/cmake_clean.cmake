file(REMOVE_RECURSE
  "../bench/bench_fig12_maxdev"
  "../bench/bench_fig12_maxdev.pdb"
  "CMakeFiles/bench_fig12_maxdev.dir/bench_fig12_maxdev.cc.o"
  "CMakeFiles/bench_fig12_maxdev.dir/bench_fig12_maxdev.cc.o.d"
  "CMakeFiles/bench_fig12_maxdev.dir/harness_common.cc.o"
  "CMakeFiles/bench_fig12_maxdev.dir/harness_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_maxdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
