file(REMOVE_RECURSE
  "../bench/bench_tightness"
  "../bench/bench_tightness.pdb"
  "CMakeFiles/bench_tightness.dir/bench_tightness.cc.o"
  "CMakeFiles/bench_tightness.dir/bench_tightness.cc.o.d"
  "CMakeFiles/bench_tightness.dir/harness_common.cc.o"
  "CMakeFiles/bench_tightness.dir/harness_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
