file(REMOVE_RECURSE
  "../bench/bench_fig13_pruning"
  "../bench/bench_fig13_pruning.pdb"
  "CMakeFiles/bench_fig13_pruning.dir/bench_fig13_pruning.cc.o"
  "CMakeFiles/bench_fig13_pruning.dir/bench_fig13_pruning.cc.o.d"
  "CMakeFiles/bench_fig13_pruning.dir/harness_common.cc.o"
  "CMakeFiles/bench_fig13_pruning.dir/harness_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
