file(REMOVE_RECURSE
  "CMakeFiles/sapla_paper_example_test.dir/sapla_paper_example_test.cc.o"
  "CMakeFiles/sapla_paper_example_test.dir/sapla_paper_example_test.cc.o.d"
  "sapla_paper_example_test"
  "sapla_paper_example_test.pdb"
  "sapla_paper_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sapla_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
