# Empty dependencies file for sapla_paper_example_test.
# This may be replaced when dependencies are built.
