# Empty dependencies file for sapla_test.
# This may be replaced when dependencies are built.
