file(REMOVE_RECURSE
  "CMakeFiles/sapla_test.dir/sapla_test.cc.o"
  "CMakeFiles/sapla_test.dir/sapla_test.cc.o.d"
  "sapla_test"
  "sapla_test.pdb"
  "sapla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sapla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
