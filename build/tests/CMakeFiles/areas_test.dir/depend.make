# Empty dependencies file for areas_test.
# This may be replaced when dependencies are built.
