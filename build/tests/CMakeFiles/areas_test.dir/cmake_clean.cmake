file(REMOVE_RECURSE
  "CMakeFiles/areas_test.dir/areas_test.cc.o"
  "CMakeFiles/areas_test.dir/areas_test.cc.o.d"
  "areas_test"
  "areas_test.pdb"
  "areas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/areas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
