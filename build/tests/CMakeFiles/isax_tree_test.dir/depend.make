# Empty dependencies file for isax_tree_test.
# This may be replaced when dependencies are built.
