file(REMOVE_RECURSE
  "CMakeFiles/isax_tree_test.dir/isax_tree_test.cc.o"
  "CMakeFiles/isax_tree_test.dir/isax_tree_test.cc.o.d"
  "isax_tree_test"
  "isax_tree_test.pdb"
  "isax_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isax_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
