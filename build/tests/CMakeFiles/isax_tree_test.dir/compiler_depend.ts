# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for isax_tree_test.
