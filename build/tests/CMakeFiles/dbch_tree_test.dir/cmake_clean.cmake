file(REMOVE_RECURSE
  "CMakeFiles/dbch_tree_test.dir/dbch_tree_test.cc.o"
  "CMakeFiles/dbch_tree_test.dir/dbch_tree_test.cc.o.d"
  "dbch_tree_test"
  "dbch_tree_test.pdb"
  "dbch_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbch_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
