# Empty dependencies file for dbch_tree_test.
# This may be replaced when dependencies are built.
