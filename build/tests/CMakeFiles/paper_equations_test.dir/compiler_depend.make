# Empty compiler generated dependencies file for paper_equations_test.
# This may be replaced when dependencies are built.
