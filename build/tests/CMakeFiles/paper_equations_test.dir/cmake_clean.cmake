file(REMOVE_RECURSE
  "CMakeFiles/paper_equations_test.dir/paper_equations_test.cc.o"
  "CMakeFiles/paper_equations_test.dir/paper_equations_test.cc.o.d"
  "paper_equations_test"
  "paper_equations_test.pdb"
  "paper_equations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_equations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
