# Empty dependencies file for convex_hull_test.
# This may be replaced when dependencies are built.
