# Empty dependencies file for apla_test.
# This may be replaced when dependencies are built.
