file(REMOVE_RECURSE
  "CMakeFiles/apla_test.dir/apla_test.cc.o"
  "CMakeFiles/apla_test.dir/apla_test.cc.o.d"
  "apla_test"
  "apla_test.pdb"
  "apla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
