# Empty compiler generated dependencies file for streaming_sapla_test.
# This may be replaced when dependencies are built.
