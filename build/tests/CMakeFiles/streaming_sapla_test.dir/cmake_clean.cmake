file(REMOVE_RECURSE
  "CMakeFiles/streaming_sapla_test.dir/streaming_sapla_test.cc.o"
  "CMakeFiles/streaming_sapla_test.dir/streaming_sapla_test.cc.o.d"
  "streaming_sapla_test"
  "streaming_sapla_test.pdb"
  "streaming_sapla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_sapla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
