# Empty dependencies file for line_fit_test.
# This may be replaced when dependencies are built.
