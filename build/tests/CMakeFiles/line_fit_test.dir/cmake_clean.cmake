file(REMOVE_RECURSE
  "CMakeFiles/line_fit_test.dir/line_fit_test.cc.o"
  "CMakeFiles/line_fit_test.dir/line_fit_test.cc.o.d"
  "line_fit_test"
  "line_fit_test.pdb"
  "line_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
