# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/line_fit_test[1]_include.cmake")
include("/root/repo/build/tests/convex_hull_test[1]_include.cmake")
include("/root/repo/build/tests/areas_test[1]_include.cmake")
include("/root/repo/build/tests/paper_equations_test[1]_include.cmake")
include("/root/repo/build/tests/sapla_paper_example_test[1]_include.cmake")
include("/root/repo/build/tests/reduction_test[1]_include.cmake")
include("/root/repo/build/tests/apla_test[1]_include.cmake")
include("/root/repo/build/tests/distance_test[1]_include.cmake")
include("/root/repo/build/tests/mindist_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/dbch_tree_test[1]_include.cmake")
include("/root/repo/build/tests/knn_test[1]_include.cmake")
include("/root/repo/build/tests/ts_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sapla_test[1]_include.cmake")
include("/root/repo/build/tests/haar_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_sapla_test[1]_include.cmake")
include("/root/repo/build/tests/range_search_test[1]_include.cmake")
include("/root/repo/build/tests/dtw_test[1]_include.cmake")
include("/root/repo/build/tests/subsequence_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/dft_test[1]_include.cmake")
include("/root/repo/build/tests/minimax_test[1]_include.cmake")
include("/root/repo/build/tests/isax_tree_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_profile_test[1]_include.cmake")
