# Empty compiler generated dependencies file for sapla_cli.
# This may be replaced when dependencies are built.
