file(REMOVE_RECURSE
  "CMakeFiles/sapla_cli.dir/sapla_cli.cc.o"
  "CMakeFiles/sapla_cli.dir/sapla_cli.cc.o.d"
  "sapla_cli"
  "sapla_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sapla_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
