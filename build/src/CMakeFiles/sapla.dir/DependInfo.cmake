
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/paper_equations.cc" "src/CMakeFiles/sapla.dir/core/paper_equations.cc.o" "gcc" "src/CMakeFiles/sapla.dir/core/paper_equations.cc.o.d"
  "/root/repo/src/core/sapla.cc" "src/CMakeFiles/sapla.dir/core/sapla.cc.o" "gcc" "src/CMakeFiles/sapla.dir/core/sapla.cc.o.d"
  "/root/repo/src/core/streaming_sapla.cc" "src/CMakeFiles/sapla.dir/core/streaming_sapla.cc.o" "gcc" "src/CMakeFiles/sapla.dir/core/streaming_sapla.cc.o.d"
  "/root/repo/src/distance/distance.cc" "src/CMakeFiles/sapla.dir/distance/distance.cc.o" "gcc" "src/CMakeFiles/sapla.dir/distance/distance.cc.o.d"
  "/root/repo/src/distance/dtw.cc" "src/CMakeFiles/sapla.dir/distance/dtw.cc.o" "gcc" "src/CMakeFiles/sapla.dir/distance/dtw.cc.o.d"
  "/root/repo/src/distance/mindist.cc" "src/CMakeFiles/sapla.dir/distance/mindist.cc.o" "gcc" "src/CMakeFiles/sapla.dir/distance/mindist.cc.o.d"
  "/root/repo/src/geom/areas.cc" "src/CMakeFiles/sapla.dir/geom/areas.cc.o" "gcc" "src/CMakeFiles/sapla.dir/geom/areas.cc.o.d"
  "/root/repo/src/geom/convex_hull.cc" "src/CMakeFiles/sapla.dir/geom/convex_hull.cc.o" "gcc" "src/CMakeFiles/sapla.dir/geom/convex_hull.cc.o.d"
  "/root/repo/src/geom/haar.cc" "src/CMakeFiles/sapla.dir/geom/haar.cc.o" "gcc" "src/CMakeFiles/sapla.dir/geom/haar.cc.o.d"
  "/root/repo/src/geom/line_fit.cc" "src/CMakeFiles/sapla.dir/geom/line_fit.cc.o" "gcc" "src/CMakeFiles/sapla.dir/geom/line_fit.cc.o.d"
  "/root/repo/src/geom/minimax.cc" "src/CMakeFiles/sapla.dir/geom/minimax.cc.o" "gcc" "src/CMakeFiles/sapla.dir/geom/minimax.cc.o.d"
  "/root/repo/src/index/dbch_tree.cc" "src/CMakeFiles/sapla.dir/index/dbch_tree.cc.o" "gcc" "src/CMakeFiles/sapla.dir/index/dbch_tree.cc.o.d"
  "/root/repo/src/index/feature_map.cc" "src/CMakeFiles/sapla.dir/index/feature_map.cc.o" "gcc" "src/CMakeFiles/sapla.dir/index/feature_map.cc.o.d"
  "/root/repo/src/index/isax_tree.cc" "src/CMakeFiles/sapla.dir/index/isax_tree.cc.o" "gcc" "src/CMakeFiles/sapla.dir/index/isax_tree.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/CMakeFiles/sapla.dir/index/rtree.cc.o" "gcc" "src/CMakeFiles/sapla.dir/index/rtree.cc.o.d"
  "/root/repo/src/mining/kmeans.cc" "src/CMakeFiles/sapla.dir/mining/kmeans.cc.o" "gcc" "src/CMakeFiles/sapla.dir/mining/kmeans.cc.o.d"
  "/root/repo/src/mining/matrix_profile.cc" "src/CMakeFiles/sapla.dir/mining/matrix_profile.cc.o" "gcc" "src/CMakeFiles/sapla.dir/mining/matrix_profile.cc.o.d"
  "/root/repo/src/mining/segmentation.cc" "src/CMakeFiles/sapla.dir/mining/segmentation.cc.o" "gcc" "src/CMakeFiles/sapla.dir/mining/segmentation.cc.o.d"
  "/root/repo/src/reduction/apca.cc" "src/CMakeFiles/sapla.dir/reduction/apca.cc.o" "gcc" "src/CMakeFiles/sapla.dir/reduction/apca.cc.o.d"
  "/root/repo/src/reduction/apca_haar.cc" "src/CMakeFiles/sapla.dir/reduction/apca_haar.cc.o" "gcc" "src/CMakeFiles/sapla.dir/reduction/apca_haar.cc.o.d"
  "/root/repo/src/reduction/apla.cc" "src/CMakeFiles/sapla.dir/reduction/apla.cc.o" "gcc" "src/CMakeFiles/sapla.dir/reduction/apla.cc.o.d"
  "/root/repo/src/reduction/cheby.cc" "src/CMakeFiles/sapla.dir/reduction/cheby.cc.o" "gcc" "src/CMakeFiles/sapla.dir/reduction/cheby.cc.o.d"
  "/root/repo/src/reduction/dft.cc" "src/CMakeFiles/sapla.dir/reduction/dft.cc.o" "gcc" "src/CMakeFiles/sapla.dir/reduction/dft.cc.o.d"
  "/root/repo/src/reduction/paa.cc" "src/CMakeFiles/sapla.dir/reduction/paa.cc.o" "gcc" "src/CMakeFiles/sapla.dir/reduction/paa.cc.o.d"
  "/root/repo/src/reduction/paalm.cc" "src/CMakeFiles/sapla.dir/reduction/paalm.cc.o" "gcc" "src/CMakeFiles/sapla.dir/reduction/paalm.cc.o.d"
  "/root/repo/src/reduction/pla.cc" "src/CMakeFiles/sapla.dir/reduction/pla.cc.o" "gcc" "src/CMakeFiles/sapla.dir/reduction/pla.cc.o.d"
  "/root/repo/src/reduction/representation.cc" "src/CMakeFiles/sapla.dir/reduction/representation.cc.o" "gcc" "src/CMakeFiles/sapla.dir/reduction/representation.cc.o.d"
  "/root/repo/src/reduction/sax.cc" "src/CMakeFiles/sapla.dir/reduction/sax.cc.o" "gcc" "src/CMakeFiles/sapla.dir/reduction/sax.cc.o.d"
  "/root/repo/src/search/knn.cc" "src/CMakeFiles/sapla.dir/search/knn.cc.o" "gcc" "src/CMakeFiles/sapla.dir/search/knn.cc.o.d"
  "/root/repo/src/search/metrics.cc" "src/CMakeFiles/sapla.dir/search/metrics.cc.o" "gcc" "src/CMakeFiles/sapla.dir/search/metrics.cc.o.d"
  "/root/repo/src/search/subsequence.cc" "src/CMakeFiles/sapla.dir/search/subsequence.cc.o" "gcc" "src/CMakeFiles/sapla.dir/search/subsequence.cc.o.d"
  "/root/repo/src/ts/io.cc" "src/CMakeFiles/sapla.dir/ts/io.cc.o" "gcc" "src/CMakeFiles/sapla.dir/ts/io.cc.o.d"
  "/root/repo/src/ts/synthetic_archive.cc" "src/CMakeFiles/sapla.dir/ts/synthetic_archive.cc.o" "gcc" "src/CMakeFiles/sapla.dir/ts/synthetic_archive.cc.o.d"
  "/root/repo/src/ts/time_series.cc" "src/CMakeFiles/sapla.dir/ts/time_series.cc.o" "gcc" "src/CMakeFiles/sapla.dir/ts/time_series.cc.o.d"
  "/root/repo/src/ts/ucr_loader.cc" "src/CMakeFiles/sapla.dir/ts/ucr_loader.cc.o" "gcc" "src/CMakeFiles/sapla.dir/ts/ucr_loader.cc.o.d"
  "/root/repo/src/util/normal.cc" "src/CMakeFiles/sapla.dir/util/normal.cc.o" "gcc" "src/CMakeFiles/sapla.dir/util/normal.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/sapla.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/sapla.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/sapla.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/sapla.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/sapla.dir/util/status.cc.o" "gcc" "src/CMakeFiles/sapla.dir/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/sapla.dir/util/table.cc.o" "gcc" "src/CMakeFiles/sapla.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
