file(REMOVE_RECURSE
  "libsapla.a"
)
