# Empty dependencies file for sapla.
# This may be replaced when dependencies are built.
