# Empty compiler generated dependencies file for motif_discovery.
# This may be replaced when dependencies are built.
