file(REMOVE_RECURSE
  "CMakeFiles/dtw_search.dir/dtw_search.cpp.o"
  "CMakeFiles/dtw_search.dir/dtw_search.cpp.o.d"
  "dtw_search"
  "dtw_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtw_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
