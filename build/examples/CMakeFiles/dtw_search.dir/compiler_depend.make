# Empty compiler generated dependencies file for dtw_search.
# This may be replaced when dependencies are built.
