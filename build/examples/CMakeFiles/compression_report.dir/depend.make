# Empty dependencies file for compression_report.
# This may be replaced when dependencies are built.
