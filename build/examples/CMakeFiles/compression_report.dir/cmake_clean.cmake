file(REMOVE_RECURSE
  "CMakeFiles/compression_report.dir/compression_report.cpp.o"
  "CMakeFiles/compression_report.dir/compression_report.cpp.o.d"
  "compression_report"
  "compression_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
