file(REMOVE_RECURSE
  "CMakeFiles/classification_1nn.dir/classification_1nn.cpp.o"
  "CMakeFiles/classification_1nn.dir/classification_1nn.cpp.o.d"
  "classification_1nn"
  "classification_1nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_1nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
