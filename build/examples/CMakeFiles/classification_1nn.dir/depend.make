# Empty dependencies file for classification_1nn.
# This may be replaced when dependencies are built.
