file(REMOVE_RECURSE
  "CMakeFiles/discord_detection.dir/discord_detection.cpp.o"
  "CMakeFiles/discord_detection.dir/discord_detection.cpp.o.d"
  "discord_detection"
  "discord_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discord_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
