# Empty compiler generated dependencies file for discord_detection.
# This may be replaced when dependencies are built.
