// Load generator for the embedded query service (serve/service.h).
//
// Builds a synthetic dataset + index, starts one QueryService, and drives
// it from `--threads` client threads in one of two modes:
//
//   --mode=closed   each client keeps exactly one request in flight
//                   (latency-bound; measures service turnaround)
//   --mode=open     clients submit asynchronously on a fixed schedule that
//                   targets `--qps` aggregate, regardless of completions —
//                   the honest way to observe overload: when the service
//                   can't keep up the queue fills and requests come back
//                   kOverloaded instead of silently slowing the generator
//
// With `--ingest-qps` > 0 the service fronts a live IngestController
// instead of a static index: a paced writer thread inserts noise-perturbed
// synthetic series at that rate (a `--delete-frac` fraction of mutations
// delete a random live id instead), so the query clients measure latency
// under concurrent memtable growth, seals, and compactions. The run then
// also prints the ingest metrics table, and `--metrics-out` carries the
// serve and sapla_ingest_* families in one exposition.
//
// Queries are drawn zipfian-skewed (`--zipf`) from a fixed pool of
// `--pool` distinct queries, so `--cache` > 0 produces realistic hit rates.
// `--deadline-us` attaches a per-request deadline; with `--degraded=1`
// expired requests still return an approximate lower-bound-only answer.
// The run ends after `--duration-s` seconds (open) or `--requests` per
// client (closed) — or on SIGINT, which stops the clients gracefully so
// the final metrics still print — and reports the service's full metrics
// table plus an outcome summary. Exports:
//
//   --json=FILE         the metrics table, machine-readable
//   --metrics-out=FILE  Prometheus text exposition of every serve metric
//   --trace-out=FILE    enables tracing and writes a Chrome trace-event
//                       JSON (load in chrome://tracing or Perfetto). The
//                       export covers every thread that did request work —
//                       client threads, the scheduler, pool workers, and
//                       the ingest writer thread (each mutation runs under
//                       its own trace context, so its ingest/insert or
//                       ingest/delete span stitches under loadgen/mutation).
//                       The file is staged and atomically renamed, so a
//                       SIGINT mid-write never leaves truncated JSON.
//   --slow-query-us=N   tail-sample requests slower than N µs into the
//                       service's slow-query log (serve/service.h)
//   --slow-log-out=FILE write the retained slow-query records as one JSON
//                       array (same staged+rename discipline)
//
//   sapla_loadgen --mode=open --qps=2000 --threads=4 --deadline-us=5000
//   sapla_loadgen --mode=closed --threads=8 --requests=500 --cache=512
//
// Dataset/index knobs: --series --n --m --k --method --tree
// Ingest knobs:        --ingest-qps --delete-frac
// Service knobs:       --max-batch --max-delay-us --queue --cache
//                      --batch-threads (fan-out of one flush; 0 = hardware)
// Reproducibility:     --seed perturbs the query pool and every client's
//                      zipfian draw sequence (same seed => same workload)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest_controller.h"
#include "search/knn.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "ts/io.h"
#include "ts/synthetic_archive.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/resource_budget.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace sapla {
namespace {

// Set by the SIGINT handler; the client loops poll it so Ctrl-C ends the
// run early but still prints (and writes) the final metrics.
std::atomic<bool> g_interrupted{false};

void HandleSigint(int) { g_interrupted.store(true); }

struct Config {
  // Workload.
  std::string mode = "closed";
  size_t threads = 4;        // client threads
  size_t requests = 500;     // per client (closed loop)
  double duration_s = 5.0;   // run length (open loop)
  double qps = 1000.0;       // aggregate arrival rate (open loop)
  size_t pool = 64;
  double zipf = 0.99;
  uint64_t seed = 0;  // perturbs the query pool + zipfian draws
  size_t k = 16;
  uint64_t deadline_us = 0;  // 0 = none
  // Dataset/index.
  size_t series = 2000;
  size_t n = 256;
  size_t m = 16;
  Method method = Method::kSapla;
  IndexKind kind = IndexKind::kDbchTree;
  // Ingest (0 = serve a static index, no writer thread).
  double ingest_qps = 0.0;
  double delete_frac = 0.0;  // fraction of mutations that are deletes
  // Service.
  size_t max_batch = 32;
  uint64_t max_delay_us = 200;
  size_t queue = 1024;
  size_t cache = 0;
  size_t batch_threads = 0;
  bool degraded = false;
  // Resource governance (docs/ROBUSTNESS.md).
  size_t mem_budget_mb = 0;       // 0 = no budget; else global byte budget
  double pressure_phase_s = 0.0;  // mid-run hard-pressure episode length
  uint64_t admission_target_us = 0;  // queue-delay shedding target
  std::string fault_spec;    // arms util/fault.h fault injection
  std::string json_path;
  std::string metrics_path;  // Prometheus text exposition
  std::string trace_path;    // Chrome trace-event JSON
  uint64_t slow_query_us = 0;   // tail-sampling latency threshold
  std::string slow_log_path;    // slow-query records, one JSON array
};

[[noreturn]] void Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--mode=closed|open] [--threads=T] [--requests=R]\n"
          "          [--duration-s=S] [--qps=Q] [--pool=P] [--zipf=Z]\n"
          "          [--seed=S] [--k=K] [--deadline-us=D] [--series=S]\n"
          "          [--n=N] [--m=M] [--method=SAPLA] [--tree=dbch|rtree]\n"
          "          [--ingest-qps=Q] [--delete-frac=F]\n"
          "          [--max-batch=B] [--max-delay-us=U] [--queue=C]\n"
          "          [--cache=E] [--batch-threads=T] [--degraded=0|1]\n"
          "          [--mem-budget-mb=N] [--pressure-phase-s=S]\n"
          "          [--admission-target-us=N]\n"
          "          [--fault=SPEC] [--json=FILE] [--metrics-out=FILE]\n"
          "          [--trace-out=FILE] [--slow-query-us=N]\n"
          "          [--slow-log-out=FILE]\n",
          argv0);
  exit(2);
}

Config ParseFlags(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) Usage(argv[0]);
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    // Strict numeric parsing: a malformed value is a usage error, never a
    // silent zero.
    auto num = [&]() -> uint64_t {
      char* end = nullptr;
      const uint64_t v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        fprintf(stderr, "--%s=%s is not an integer\n", key.c_str(),
                value.c_str());
        exit(2);
      }
      return v;
    };
    auto real = [&]() -> double {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        fprintf(stderr, "--%s=%s is not a number\n", key.c_str(),
                value.c_str());
        exit(2);
      }
      return v;
    };
    if (key == "mode") {
      if (value != "closed" && value != "open") Usage(argv[0]);
      config.mode = value;
    } else if (key == "threads") {
      config.threads = num();
    } else if (key == "requests") {
      config.requests = num();
    } else if (key == "duration-s") {
      config.duration_s = real();
    } else if (key == "qps") {
      config.qps = real();
    } else if (key == "pool") {
      config.pool = num();
    } else if (key == "zipf") {
      config.zipf = real();
    } else if (key == "seed") {
      config.seed = num();
    } else if (key == "k") {
      config.k = num();
    } else if (key == "deadline-us") {
      config.deadline_us = num();
    } else if (key == "series") {
      config.series = num();
    } else if (key == "n") {
      config.n = num();
    } else if (key == "m") {
      config.m = num();
    } else if (key == "method") {
      bool found = false;
      for (const Method m : AllMethods())
        if (MethodName(m) == value) {
          config.method = m;
          found = true;
        }
      if (!found) Usage(argv[0]);
    } else if (key == "tree") {
      if (value == "dbch") {
        config.kind = IndexKind::kDbchTree;
      } else if (value == "rtree") {
        config.kind = IndexKind::kRTree;
      } else {
        Usage(argv[0]);
      }
    } else if (key == "ingest-qps") {
      config.ingest_qps = real();
    } else if (key == "delete-frac") {
      config.delete_frac = real();
    } else if (key == "max-batch") {
      config.max_batch = num();
    } else if (key == "max-delay-us") {
      config.max_delay_us = num();
    } else if (key == "queue") {
      config.queue = num();
    } else if (key == "cache") {
      config.cache = num();
    } else if (key == "batch-threads") {
      config.batch_threads = num();
    } else if (key == "degraded") {
      config.degraded = value != "0";
    } else if (key == "mem-budget-mb") {
      config.mem_budget_mb = num();
    } else if (key == "pressure-phase-s") {
      config.pressure_phase_s = real();
    } else if (key == "admission-target-us") {
      config.admission_target_us = num();
    } else if (key == "fault") {
      config.fault_spec = value;
    } else if (key == "json") {
      config.json_path = value;
    } else if (key == "metrics-out") {
      config.metrics_path = value;
    } else if (key == "trace-out") {
      config.trace_path = value;
    } else if (key == "slow-query-us") {
      config.slow_query_us = num();
    } else if (key == "slow-log-out") {
      config.slow_log_path = value;
    } else {
      Usage(argv[0]);
    }
  }
  // Reject configurations that would divide by zero or spin forever
  // instead of failing deep inside a client thread.
  if (config.threads == 0) {
    fprintf(stderr, "--threads must be > 0\n");
    exit(2);
  }
  if (config.pool == 0) {
    fprintf(stderr, "--pool must be > 0\n");
    exit(2);
  }
  if (config.mode == "open" && config.qps <= 0.0) {
    fprintf(stderr, "--qps must be > 0 in open mode\n");
    exit(2);
  }
  if (config.series == 0 || config.n < 2) {
    fprintf(stderr, "--series must be > 0 and --n at least 2\n");
    exit(2);
  }
  if (config.delete_frac < 0.0 || config.delete_frac > 1.0) {
    fprintf(stderr, "--delete-frac must be in [0, 1]\n");
    exit(2);
  }
  if (config.delete_frac > 0.0 && config.ingest_qps <= 0.0) {
    fprintf(stderr, "--delete-frac needs --ingest-qps > 0\n");
    exit(2);
  }
  if (config.pressure_phase_s > 0.0 && config.mem_budget_mb == 0) {
    fprintf(stderr, "--pressure-phase-s needs --mem-budget-mb > 0\n");
    exit(2);
  }
  return config;
}

std::vector<std::vector<double>> MakeQueryPool(const Dataset& ds,
                                               const Config& config) {
  Rng rng(0x5EEDF00D ^ config.seed);
  std::vector<std::vector<double>> pool;
  pool.reserve(config.pool);
  for (size_t q = 0; q < config.pool; ++q) {
    std::vector<double> query = ds.series[rng.UniformInt(ds.size())].values;
    for (double& v : query) v += rng.Gaussian(0.0, 0.05);
    pool.push_back(std::move(query));
  }
  return pool;
}

/// Client-side tally (the service's own metrics are reported separately).
struct Outcomes {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> overloaded{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> other{0};

  void Count(const ServeResponse& response) {
    if (response.status.ok()) {
      ok.fetch_add(1);
    } else if (response.status.code() == StatusCode::kOverloaded) {
      overloaded.fetch_add(1);
    } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
      deadline.fetch_add(1);
      if (response.approximate) degraded.fetch_add(1);
    } else {
      other.fetch_add(1);
    }
  }
};

/// Closed loop: one request in flight per client thread.
double RunClosed(QueryService& service,
                 const std::vector<std::vector<double>>& pool,
                 const Config& config, Outcomes* outcomes) {
  const ZipfSampler zipf(pool.size(), config.zipf);
  WallTimer wall;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < config.threads; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(config.seed * 0x9E3779B9 + 0x10AD + c);
      for (size_t r = 0; r < config.requests; ++r) {
        if (g_interrupted.load()) break;
        outcomes->Count(service.Knn(pool[zipf.Sample(rng)], config.k,
                                    config.deadline_us));
      }
    });
  }
  for (auto& t : clients) t.join();
  return wall.Seconds();
}

/// Open loop: each thread submits qps/threads arrivals per second on a
/// fixed schedule, never waiting for earlier requests to finish.
double RunOpen(QueryService& service,
               const std::vector<std::vector<double>>& pool,
               const Config& config, Outcomes* outcomes) {
  using Clock = std::chrono::steady_clock;
  const double per_thread_qps = config.qps / config.threads;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / per_thread_qps));
  WallTimer wall;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < config.threads; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(config.seed * 0x9E3779B9 + 0x10AD + c);
      const ZipfSampler zipf(pool.size(), config.zipf);
      std::vector<std::future<ServeResponse>> in_flight;
      const auto start = Clock::now();
      const auto end =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(config.duration_s));
      auto next = start;
      while (next < end && !g_interrupted.load()) {
        std::this_thread::sleep_until(next);
        in_flight.push_back(service.SubmitKnn(pool[zipf.Sample(rng)],
                                              config.k, config.deadline_us));
        next += interval;
        // Reap already-finished futures so the vector stays small.
        while (!in_flight.empty() &&
               in_flight.front().wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready) {
          outcomes->Count(in_flight.front().get());
          in_flight.erase(in_flight.begin());
        }
      }
      for (auto& f : in_flight) outcomes->Count(f.get());
    });
  }
  for (auto& t : clients) t.join();
  return wall.Seconds();
}

int Run(int argc, char** argv) {
  const Config config = ParseFlags(argc, argv);
  SetNumThreads(config.batch_threads);
  std::signal(SIGINT, HandleSigint);
  if (!config.trace_path.empty()) obs::SetTraceEnabled(true);
  if (!config.fault_spec.empty()) {
    if (const Status st = fault::ConfigureFromSpec(config.fault_spec);
        !st.ok()) {
      fprintf(stderr, "bad --fault spec: %s\n", st.ToString().c_str());
      return 2;
    }
  }

  SyntheticOptions opt;
  opt.length = config.n;
  opt.num_series = config.series;
  const Dataset ds = MakeSyntheticDataset(0, opt);
  const std::vector<std::vector<double>> pool = MakeQueryPool(ds, config);

  // Global resource budget: the serve tier (cache + queue) and the ingest
  // tier charge one root, so the exposition shows who holds what and
  // pressure anywhere triggers the graded ladder everywhere.
  std::shared_ptr<ResourceBudget> budget;
  if (config.mem_budget_mb > 0)
    budget = ResourceBudget::MakeRoot(
        "process", static_cast<uint64_t>(config.mem_budget_mb) << 20);

  // Static index, or a live IngestController preloaded with the same
  // dataset — QueryService only sees a SearchIndex either way.
  std::unique_ptr<SimilarityIndex> static_index;
  std::unique_ptr<IngestController> ingest;
  const SearchIndex* backing = nullptr;
  WallTimer build_timer;
  if (config.ingest_qps > 0.0) {
    IngestOptions iopt;
    iopt.num_shards = 2;
    if (budget) iopt.memory_budget = ResourceBudget::MakeChild(budget, "ingest");
    ingest = std::make_unique<IngestController>(config.method, config.m,
                                                config.kind, config.n, iopt);
    for (const TimeSeries& ts : ds.series) {
      if (const auto id = ingest->Insert(ts.values, ts.label); !id.ok()) {
        fprintf(stderr, "preload failed: %s\n", id.status().ToString().c_str());
        return 1;
      }
    }
    backing = ingest.get();
  } else {
    static_index =
        std::make_unique<SimilarityIndex>(config.method, config.m, config.kind);
    if (Status s = static_index->Build(ds); !s.ok()) {
      fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
      return 1;
    }
    backing = static_index.get();
  }
  printf("%s: %s/%s, %zu series of length %zu, M=%zu (built in %.2fs)\n",
         ingest ? "ingest" : "index", MethodName(config.method).c_str(),
         config.kind == IndexKind::kDbchTree ? "dbch" : "rtree", ds.size(),
         ds.length(), config.m, build_timer.Seconds());

  ServeOptions options;
  options.queue_capacity = config.queue;
  options.max_batch = config.max_batch;
  options.max_delay_us = config.max_delay_us;
  options.num_threads = config.batch_threads;
  options.cache_capacity = config.cache;
  options.default_deadline_us = 0;
  options.degraded_answers = config.degraded;
  options.slow_query_us = config.slow_query_us;
  options.memory_budget = budget;
  options.admission_target_delay_us = config.admission_target_us;
  QueryService service(*backing, options);

  // Pressure phase: mid-run the budget collapses to a sliver, forcing the
  // hard-pressure ladder (shed writes, degrade reads); after
  // `pressure_phase_s` it lifts, and the time until the service answers
  // exactly again is the recovery latency this mode exists to measure.
  std::atomic<bool> stop_pressure{false};
  std::atomic<int64_t> recovery_us{-1};
  std::thread pressure;
  if (config.pressure_phase_s > 0.0) {
    pressure = std::thread([&] {
      using Clock = std::chrono::steady_clock;
      const uint64_t full_capacity = budget->capacity();
      // Let the run reach steady state first.
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::max(0.25, config.pressure_phase_s / 2)));
      if (stop_pressure.load() || g_interrupted.load()) return;
      const uint64_t sliver = std::max<uint64_t>(1, budget->used() / 4);
      budget->SetCapacity(sliver);
      printf("pressure phase: capacity %llu -> %llu bytes for %.1fs\n",
             static_cast<unsigned long long>(full_capacity),
             static_cast<unsigned long long>(sliver),
             config.pressure_phase_s);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(config.pressure_phase_s));
      budget->SetCapacity(full_capacity);
      const auto lifted = Clock::now();
      // Recovery latency: poll with probe queries until an exact OK answer
      // comes back and health reads healthy again.
      while (!stop_pressure.load() && !g_interrupted.load()) {
        const ServeResponse r = service.Knn(pool[0], config.k);
        if (r.status.ok() && !r.approximate &&
            service.health() == ServeHealth::kHealthy) {
          recovery_us.store(std::chrono::duration_cast<std::chrono::microseconds>(
                                Clock::now() - lifted)
                                .count());
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // Paced writer: one mutation every 1/ingest_qps seconds while the query
  // clients run. Deletes pick a uniform live id; inserts perturb archive
  // series so the corpus keeps drifting instead of repeating.
  std::atomic<bool> stop_writer{false};
  std::thread writer;
  if (ingest) {
    writer = std::thread([&] {
      using Clock = std::chrono::steady_clock;
      const auto interval = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / config.ingest_qps));
      Rng rng(config.seed ^ 0x1D6E57ull);
      std::vector<uint64_t> alive;
      alive.reserve(ds.size());
      for (uint64_t id = 0; id < ds.size(); ++id) alive.push_back(id);
      size_t source = 0;
      auto next = Clock::now() + interval;
      while (!stop_writer.load() && !g_interrupted.load()) {
        std::this_thread::sleep_until(next);
        next += interval;
        // Each mutation is one logical request of its own: a minted trace
        // context + wrapping span makes the writer thread's work (and the
        // ingest/insert / ingest/delete spans beneath it) show up stitched
        // in the --trace-out export instead of as orphan slices.
        obs::TraceContextScope mutation_scope(obs::MintTraceContext());
        SAPLA_TRACE_SPAN("loadgen/mutation");
        if (!alive.empty() && rng.Uniform() < config.delete_frac) {
          const size_t pos = rng.UniformInt(alive.size());
          if (ingest->Delete(alive[pos]).ok()) {
            alive[pos] = alive.back();
            alive.pop_back();
          }
        } else {
          std::vector<double> values = ds.series[source++ % ds.size()].values;
          for (double& v : values) v += rng.Gaussian(0.0, 0.05);
          if (const auto id = ingest->Insert(values); id.ok())
            alive.push_back(*id);
        }
      }
    });
  }

  Outcomes outcomes;
  const double wall = config.mode == "closed"
                          ? RunClosed(service, pool, config, &outcomes)
                          : RunOpen(service, pool, config, &outcomes);
  if (writer.joinable()) {
    stop_writer.store(true);
    writer.join();
  }
  if (pressure.joinable()) {
    stop_pressure.store(true);
    pressure.join();
  }
  if (config.pressure_phase_s > 0.0) {
    if (recovery_us.load() >= 0)
      printf("pressure phase: recovered to exact healthy service %.2fms "
             "after the budget lifted\n",
             recovery_us.load() / 1000.0);
    else
      printf("pressure phase: recovery not observed before shutdown\n");
  }
  service.Stop();
  if (g_interrupted.load())
    printf("\ninterrupted; reporting metrics for the partial run\n");

  const uint64_t total = outcomes.ok.load() + outcomes.overloaded.load() +
                         outcomes.deadline.load() + outcomes.other.load();
  printf("\n%s loop: %llu requests in %.2fs (%.0f QPS achieved",
         config.mode.c_str(), static_cast<unsigned long long>(total), wall,
         wall > 0.0 ? total / wall : 0.0);
  if (config.mode == "open") printf(", %.0f targeted", config.qps);
  printf(")\n");
  printf("  ok                %llu\n",
         static_cast<unsigned long long>(outcomes.ok.load()));
  printf("  overloaded        %llu\n",
         static_cast<unsigned long long>(outcomes.overloaded.load()));
  printf("  deadline_exceeded %llu (degraded answers: %llu)\n",
         static_cast<unsigned long long>(outcomes.deadline.load()),
         static_cast<unsigned long long>(outcomes.degraded.load()));
  printf("  other             %llu\n\n",
         static_cast<unsigned long long>(outcomes.other.load()));

  const ServeMetricsSnapshot snap = service.MetricsSnapshot();
  const Table t = MetricsToTable(snap, "Serve metrics (" + config.mode +
                                           " loop, max_batch=" +
                                           std::to_string(config.max_batch) +
                                           ")");
  t.Print();
  if (ingest) {
    const IngestMetricsSnapshot isnap = SnapshotIngestMetrics(ingest->metrics());
    IngestMetricsToTable(
        isnap, "Ingest metrics (target " +
                   std::to_string(static_cast<long long>(config.ingest_qps)) +
                   " mutations/s)")
        .Print();
  }
  if (budget) BudgetMetricsToTable(*budget).Print();
  if (!config.json_path.empty() && !t.WriteJson(config.json_path)) {
    fprintf(stderr, "could not write %s\n", config.json_path.c_str());
    return 1;
  }
  if (!config.metrics_path.empty()) {
    // One scrape: serve families first, then the sapla_ingest_* and
    // sapla_budget_* families (disjoint names, so the concatenation is
    // valid exposition text). Written atomically: a failure (e.g. full
    // disk) leaves any previous exposition intact and exits non-zero.
    std::string body = MetricsToPrometheus(service.metrics());
    if (ingest) body += IngestMetricsToPrometheus(ingest->metrics());
    if (budget) body += BudgetMetricsToPrometheus(*budget);
    if (const Status st = AtomicWriteFile(config.metrics_path, body);
        !st.ok()) {
      fprintf(stderr, "could not write %s: %s\n", config.metrics_path.c_str(),
              st.ToString().c_str());
      return 1;
    }
  }
  if (!config.trace_path.empty()) {
    obs::SetTraceEnabled(false);
    // The export is staged and renamed, so even a SIGINT that lands
    // mid-write leaves either no file or a complete one — never a
    // truncated JSON array that chrome://tracing rejects.
    if (Status st = obs::WriteChromeTraceStatus(config.trace_path);
        !st.ok()) {
      fprintf(stderr, "could not write %s: %s\n", config.trace_path.c_str(),
              st.ToString().c_str());
      return 1;
    }
    printf("trace: %zu events -> %s (load in chrome://tracing)\n",
           obs::CollectTrace().size(), config.trace_path.c_str());
  }
  if (!config.slow_log_path.empty()) {
    if (!service.slow_query_log().WriteJsonArray(config.slow_log_path)) {
      fprintf(stderr, "could not write %s\n", config.slow_log_path.c_str());
      return 1;
    }
    printf("slow-query log: %llu record(s) logged, %zu retained -> %s\n",
           static_cast<unsigned long long>(
               service.slow_query_log().total_logged()),
           service.slow_query_log().Records().size(),
           config.slow_log_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace sapla

int main(int argc, char** argv) { return sapla::Run(argc, argv); }
