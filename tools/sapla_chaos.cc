// Chaos harness: runs the serving stack under a deterministic injected
// fault schedule (util/fault.h) and asserts the robustness invariants the
// fault framework exists to enforce:
//
//   1. No crashes. The process finishing at all is the first assertion;
//      CI runs this binary under ASan/UBSan so "finishing" is a strong one.
//   2. Every OK exact response is bit-identical to the fault-free answer
//      (serial SimilarityIndex::Knn / RangeSearch on the same index).
//   3. Every OK approximate response — served while the degradation ladder
//      is below healthy, or attached to a deadline miss — is bit-identical
//      to the lower-bound-only answer (KnnLowerBound /
//      RangeSearchLowerBound).
//   4. Every failure carries one of the codes the serving contract allows:
//      kOverloaded, kDeadlineExceeded, kUnavailable, kIOError.
//   5. Crash-safe persistence: saves under injected I/O faults either
//      succeed or leave the previous archive byte-identical; loads of
//      whatever is on disk always succeed.
//
// The schedule is replayable: every trigger decision is a pure function of
// (--seed, fault point, evaluation index), so a failing run reproduces
// exactly from its command line. Per-point evaluation/trigger counts print
// at the end — a chaos run where nothing triggered is visible, not a
// silent pass.
//
//   6. Shard kill/restart (--shards=N, N >= 2): with one shard marked
//      unhealthy the fleet keeps answering — availability stays above a
//      floor, every OK answer is approximate and bit-identical to the
//      deterministic surviving-shards merge — retries stay within the
//      client budget, and after every RestoreShard / RebuildShard the
//      answers are bit-identical to the all-healthy baseline again.
//
//   7. Ingest kill/restart (--ingest): a durable IngestController under
//      injected WAL-append / seal / compact / checkpoint / io faults,
//      killed without warning after every round of mutations, must recover
//      to exactly the acknowledged history — visible ids and every
//      query answer bit-identical to a fault-free controller that was fed
//      only the acked operations. Un-acked mutations never reappear.
//
//   sapla_chaos --seed=42 --queries=1000            # per Method x IndexKind
//   sapla_chaos --spec='seed=1;serve/flush=p0.05'   # custom fault schedule
//   sapla_chaos --shards=3 --shard-cycles=6         # + shard kill/restart
//   sapla_chaos --ingest --ingest-rounds=4          # + ingest kill/restart
//
// Exit status: 0 = all invariants held, 1 = violations (printed), 2 = bad
// usage. Requires a build with SAPLA_FAULT=ON (the default); prints a
// clear error and exits 2 otherwise.

#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "index/index_backend.h"
#include "ingest/ingest_controller.h"
#include "reduction/representation.h"
#include "reduction/representation_store.h"
#include "search/knn.h"
#include "search/sharded_index.h"
#include "serve/retry.h"
#include "serve/service.h"
#include "ts/io.h"
#include "ts/synthetic_archive.h"
#include "util/fault.h"
#include "util/resource_budget.h"
#include "util/rng.h"

namespace sapla {
namespace {

struct Config {
  uint64_t seed = 42;
  size_t queries = 900;  // per Method x IndexKind combination
  size_t series = 300;
  size_t n = 128;
  size_t m = 12;
  size_t k = 5;
  double radius = 8.0;
  size_t pool = 24;          // distinct queries (exercises the cache)
  size_t io_rounds = 200;    // save/load attempts under injected I/O faults
  size_t shards = 0;         // >= 2 enables the shard kill/restart phase
  size_t shard_cycles = 6;   // kill/restart rounds in that phase
  bool compressed_snapshots = false;  // shard snapshots use quantized columns
  bool ingest = false;       // enables the ingest kill/restart phase
  size_t ingest_rounds = 3;  // kill/restart cycles in that phase
  size_t ingest_ops = 400;   // mutations attempted per cycle
  bool mem_pressure = false;  // enables the memory-budget pressure phase
  bool disk_full = false;     // enables the disk-full (ENOSPC) phase
  std::string spec;          // overrides the default fault schedule
  bool verbose = false;
};

[[noreturn]] void Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--seed=S] [--queries=Q] [--series=N] [--n=LEN]\n"
          "          [--m=M] [--k=K] [--pool=P] [--io-rounds=R]\n"
          "          [--shards=N] [--shard-cycles=C]\n"
          "          [--compressed-snapshots[=0|1]]\n"
          "          [--ingest] [--ingest-rounds=R] [--ingest-ops=N]\n"
          "          [--mem-pressure] [--disk-full]\n"
          "          [--spec=FAULT_SPEC] [--verbose=0|1]\n",
          argv0);
  exit(2);
}

Config ParseFlags(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Boolean toggles also work bare, CI-style.
    if (arg == "--ingest") {
      config.ingest = true;
      continue;
    }
    if (arg == "--compressed-snapshots") {
      config.compressed_snapshots = true;
      continue;
    }
    if (arg == "--mem-pressure") {
      config.mem_pressure = true;
      continue;
    }
    if (arg == "--disk-full") {
      config.disk_full = true;
      continue;
    }
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) Usage(argv[0]);
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    const auto num = [&]() -> uint64_t {
      char* end = nullptr;
      const uint64_t v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') Usage(argv[0]);
      return v;
    };
    if (key == "seed") {
      config.seed = num();
    } else if (key == "queries") {
      config.queries = num();
    } else if (key == "series") {
      config.series = num();
    } else if (key == "n") {
      config.n = num();
    } else if (key == "m") {
      config.m = num();
    } else if (key == "k") {
      config.k = num();
    } else if (key == "pool") {
      config.pool = num();
    } else if (key == "io-rounds") {
      config.io_rounds = num();
    } else if (key == "shards") {
      config.shards = num();
    } else if (key == "shard-cycles") {
      config.shard_cycles = num();
    } else if (key == "compressed-snapshots") {
      config.compressed_snapshots = value != "0";
    } else if (key == "ingest") {
      config.ingest = value != "0";
    } else if (key == "ingest-rounds") {
      config.ingest_rounds = num();
    } else if (key == "ingest-ops") {
      config.ingest_ops = num();
    } else if (key == "mem-pressure") {
      config.mem_pressure = value != "0";
    } else if (key == "disk-full") {
      config.disk_full = value != "0";
    } else if (key == "spec") {
      config.spec = value;
    } else if (key == "verbose") {
      config.verbose = value != "0";
    } else {
      Usage(argv[0]);
    }
  }
  return config;
}

/// Violation log: every broken invariant is one printed line + one count.
struct Violations {
  uint64_t count = 0;

  void Report(const std::string& what) {
    ++count;
    fprintf(stderr, "VIOLATION: %s\n", what.c_str());
  }
};

bool SameResult(const KnnResult& a, const KnnResult& b) {
  return a.neighbors == b.neighbors && a.num_measured == b.num_measured;
}

/// Tally of response outcomes for one Method x IndexKind case.
struct Tally {
  uint64_t ok_exact = 0;
  uint64_t ok_cached = 0;
  uint64_t ok_approximate = 0;
  uint64_t overloaded = 0;
  uint64_t deadline = 0;
  uint64_t unavailable = 0;
  uint64_t other = 0;
};

void RunServeCase(const Config& config, Method method, IndexKind kind,
                  const Dataset& ds, Violations* violations, Tally* total) {
  SimilarityIndex index(method, config.m, kind);
  // Index build is fault-free: the serving invariants need a good index.
  fault::Disable();
  if (const Status st = index.Build(ds); !st.ok()) {
    violations->Report("index build failed for " + MethodName(method) +
                       ": " + st.ToString());
    return;
  }

  // Fault-free baselines, computed serially before any injection starts.
  std::vector<std::vector<double>> pool;
  Rng rng(config.seed ^ 0xC4A05u);
  for (size_t i = 0; i < config.pool; ++i) {
    std::vector<double> q = ds.series[rng.UniformInt(ds.size())].values;
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);
    pool.push_back(std::move(q));
  }
  std::vector<KnnResult> exact_knn, lb_knn, exact_range, lb_range;
  for (const std::vector<double>& q : pool) {
    exact_knn.push_back(index.Knn(q, config.k));
    lb_knn.push_back(index.KnnLowerBound(q, config.k));
    exact_range.push_back(index.RangeSearch(q, config.radius));
    lb_range.push_back(index.RangeSearchLowerBound(q, config.radius));
  }

  ServeOptions options;
  options.queue_capacity = 64;
  options.max_batch = 8;
  options.max_delay_us = 200;
  options.cache_capacity = 32;
  options.degraded_answers = true;
  options.flush_failures_degraded = 2;
  options.flush_failures_unhealthy = 6;
  options.watchdog_interval_us = 5000;
  options.stall_degraded_us = 100'000;
  options.stall_unhealthy_us = 2'000'000;
  QueryService service(index, options);

  fault::Enable(config.seed);  // re-arm the schedule configured in Run()

  const std::string label = MethodName(method) + "/" + IndexKindName(kind);
  for (size_t i = 0; i < config.queries; ++i) {
    const size_t qi = i % pool.size();
    const bool knn = i % 2 == 0;
    // Every 13th request carries a deadline too short to survive the
    // batching window, keeping the deadline path under fault pressure too.
    const uint64_t deadline_us = i % 13 == 0 ? 1 : 0;
    const ServeResponse r =
        knn ? service.Knn(pool[qi], config.k, deadline_us)
            : service.Range(pool[qi], config.radius, deadline_us);
    const std::string where =
        label + " query " + std::to_string(i) + (knn ? " (knn)" : " (range)");

    if (r.status.ok()) {
      if (r.approximate) {
        ++total->ok_approximate;
        if (!SameResult(r.result, knn ? lb_knn[qi] : lb_range[qi]))
          violations->Report(where +
                             ": approximate answer != lower-bound baseline");
      } else {
        r.cache_hit ? ++total->ok_cached : ++total->ok_exact;
        if (!SameResult(r.result, knn ? exact_knn[qi] : exact_range[qi]))
          violations->Report(where + ": OK answer != fault-free baseline");
      }
      continue;
    }
    switch (r.status.code()) {
      case StatusCode::kOverloaded:
        ++total->overloaded;
        break;
      case StatusCode::kDeadlineExceeded:
        ++total->deadline;
        // With degraded_answers an attached approximate answer must still
        // be the lower-bound baseline.
        if (r.approximate &&
            !SameResult(r.result, knn ? lb_knn[qi] : lb_range[qi]))
          violations->Report(where +
                             ": degraded answer != lower-bound baseline");
        break;
      case StatusCode::kUnavailable:
        ++total->unavailable;
        break;
      case StatusCode::kIOError:
        // Allowed by the contract, though the serve path never emits it.
        break;
      default:
        ++total->other;
        violations->Report(where + ": disallowed status " +
                           r.status.ToString());
    }
  }
  fault::Disable();
  service.Stop();
  if (config.verbose)
    printf("  %-18s health at end: %s\n", label.c_str(),
           ServeHealthName(service.health()));
}

/// Persistence under injected I/O failures: a failed save must leave the
/// previous archive intact; whatever is on disk must always load.
void RunIoCase(const Config& config, const Dataset& ds,
               Violations* violations) {
  const auto reducer = MakeReducer(Method::kSapla);
  RepresentationStore store;
  for (const TimeSeries& ts : ds.series)
    reducer->ReduceInto(ts.values, config.m, &store);

  const std::string path = "/tmp/sapla_chaos_store.bin";
  std::remove(path.c_str());
  fault::Disable();
  if (const Status st = SaveRepresentationStore(path, store); !st.ok()) {
    violations->Report("fault-free save failed: " + st.ToString());
    return;
  }
  const std::string good = SerializeRepresentationStore(store);

  fault::Enable(config.seed);
  uint64_t failed_saves = 0;
  for (size_t round = 0; round < config.io_rounds; ++round) {
    const Status st = SaveRepresentationStore(path, store);
    if (!st.ok()) {
      ++failed_saves;
      if (st.code() != StatusCode::kIOError)
        violations->Report("save round " + std::to_string(round) +
                           ": unexpected code " + st.ToString());
    }
    // The archive on disk is the old bytes or the new bytes — which are
    // equal here — never a torn mix, regardless of where the save failed.
    fault::Disable();
    const auto loaded = LoadRepresentationStore(path);
    if (!loaded.ok()) {
      violations->Report("load after save round " + std::to_string(round) +
                         " failed: " + loaded.status().ToString());
    } else if (!(*loaded == store)) {
      violations->Report("archive content changed after failed save round " +
                         std::to_string(round));
    }
    fault::Enable(config.seed);
  }
  fault::Disable();
  std::remove(path.c_str());
  std::remove((path + ".tmp." + std::to_string(getpid())).c_str());
  printf("persistence: %zu save rounds, %" PRIu64
         " injected failures, archive intact\n",
         config.io_rounds, failed_saves);
}

/// Shard kill/restart chaos: a sharded fleet under injected admission
/// faults with one shard periodically killed and brought back, via both
/// snapshot restore and in-place rebuild. Availability, answer identity
/// and retry amplification are all asserted against deterministic
/// fault-free baselines.
void RunShardCase(const Config& config, const Dataset& ds,
                  Violations* violations) {
  fault::Disable();
  ShardedIndex::Options opt;
  opt.num_shards = config.shards;
  ShardedIndex index(Method::kSapla, config.m, IndexKind::kRTree, opt);
  if (const Status st = index.Build(ds); !st.ok()) {
    violations->Report("sharded build failed: " + st.ToString());
    return;
  }
  const std::string prefix = "/tmp/sapla_chaos_shard";
  SnapshotWriteOptions write_options;
  if (config.compressed_snapshots) {
    // Lossy quantized columns: restores below must still answer exactly,
    // because pruning adds the stored slack and distances are refined
    // against raw values.
    write_options.codec.ab_step = 1e-4;
    write_options.codec.coeff_step = 1e-4;
  }
  if (const Status st = index.SaveSnapshots(prefix, write_options); !st.ok()) {
    violations->Report("shard snapshot save failed: " + st.ToString());
    return;
  }

  // Fault-free query pool + all-healthy baseline.
  std::vector<std::vector<double>> pool;
  Rng rng(config.seed ^ 0x5AA4Du);
  for (size_t i = 0; i < config.pool; ++i) {
    std::vector<double> q = ds.series[rng.UniformInt(ds.size())].values;
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);
    pool.push_back(std::move(q));
  }
  std::vector<KnnResult> healthy_knn;
  for (const std::vector<double>& q : pool)
    healthy_knn.push_back(index.Knn(q, config.k));

  if (config.compressed_snapshots) {
    // Swap every shard to its quantized snapshot up front, then prove the
    // compressed fleet returns id- and distance-identical neighbors. The
    // measured-candidate counters may legitimately differ (slack loosens
    // the filter), so the healthy baseline is re-taken from the compressed
    // fleet before the kill/restart cycles.
    for (size_t s = 0; s < index.num_shards(); ++s) {
      const Status st =
          index.RestoreShard(s, ShardedIndex::ShardSnapshotPath(prefix, s));
      if (!st.ok()) {
        violations->Report("compressed shard restore failed: " +
                           st.ToString());
        return;
      }
    }
    std::vector<KnnResult> compressed_knn;
    for (const std::vector<double>& q : pool)
      compressed_knn.push_back(index.Knn(q, config.k));
    for (size_t i = 0; i < pool.size(); ++i)
      if (compressed_knn[i].neighbors != healthy_knn[i].neighbors)
        violations->Report("compressed fleet answer " + std::to_string(i) +
                           " != raw-store neighbors");
    healthy_knn = std::move(compressed_knn);
  }

  ServeOptions serve;
  serve.queue_capacity = 64;
  serve.max_batch = 8;
  serve.max_delay_us = 200;
  serve.cache_capacity = 0;  // health is not part of the cache key
  QueryService service(index, serve);

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_us = 100;
  policy.hedge_delay_us = 3000;
  const double kBudgetTokens = 8.0, kTokensPerSuccess = 0.05;
  RetryBudget budget(kBudgetTokens, kTokensPerSuccess);
  RetryingClient client(service, policy, &budget);

  uint64_t sent = 0, answered = 0;
  const auto drive = [&](const std::vector<KnnResult>& baseline,
                         bool expect_approximate, const std::string& where) {
    fault::Enable(config.seed);
    for (size_t i = 0; i < pool.size(); ++i) {
      ++sent;
      const ServeResponse r = client.Knn(pool[i], config.k);
      if (!r.status.ok()) {
        if (r.status.code() != StatusCode::kOverloaded &&
            r.status.code() != StatusCode::kUnavailable &&
            r.status.code() != StatusCode::kDeadlineExceeded)
          violations->Report(where + " query " + std::to_string(i) +
                             ": disallowed status " + r.status.ToString());
        continue;
      }
      ++answered;
      if (r.approximate != expect_approximate)
        violations->Report(where + " query " + std::to_string(i) +
                           ": approximate flag should be " +
                           (expect_approximate ? "true" : "false"));
      if (!SameResult(r.result, baseline[i]))
        violations->Report(where + " query " + std::to_string(i) +
                           ": answer != deterministic baseline");
    }
    fault::Disable();
  };

  for (size_t cycle = 0; cycle < config.shard_cycles; ++cycle) {
    const size_t victim = cycle % index.num_shards();
    const std::string tag = "shard cycle " + std::to_string(cycle);

    drive(healthy_knn, /*expect_approximate=*/false, tag + " (all healthy)");

    // Kill: the victim is excluded from the scatter; the surviving shards'
    // merge is still deterministic, so its fault-free answers are the
    // baseline for everything served while the shard is down.
    index.SetShardHealth(victim, ShardHealth::kUnhealthy);
    std::vector<KnnResult> down_knn;
    for (const std::vector<double>& q : pool)
      down_knn.push_back(index.Knn(q, config.k));
    const auto [lo, hi] = index.ShardRange(victim);
    for (size_t i = 0; i < down_knn.size(); ++i)
      for (const auto& [dist, id] : down_knn[i].neighbors)
        if (id >= lo && id < hi)
          violations->Report(tag + ": dead shard id " + std::to_string(id) +
                             " in the down baseline");
    drive(down_knn, /*expect_approximate=*/true, tag + " (one shard down)");

    // Restart, alternating the two recovery paths, then the fleet must be
    // bit-identical to the all-healthy baseline again. With compressed
    // snapshots only the restore path keeps the fleet's stores (and thus
    // its counters) homogeneous, so the rebuild leg is skipped.
    const Status st =
        cycle % 2 == 0 || config.compressed_snapshots
            ? index.RestoreShard(victim,
                                 ShardedIndex::ShardSnapshotPath(prefix,
                                                                 victim))
            : index.RebuildShard(victim);
    if (!st.ok()) {
      violations->Report(tag + ": shard restart failed: " + st.ToString());
      return;
    }
    for (size_t i = 0; i < pool.size(); ++i)
      if (!SameResult(index.Knn(pool[i], config.k), healthy_knn[i]))
        violations->Report(tag + ": post-restore answer " +
                           std::to_string(i) + " != healthy baseline");
  }

  service.Stop();
  for (size_t s = 0; s < index.num_shards(); ++s)
    std::remove(ShardedIndex::ShardSnapshotPath(prefix, s).c_str());

  // Availability floor: shard death must not take the fleet down. The
  // injected admission faults fail a few percent of attempts; with retries
  // the answered fraction stays comfortably above 95%.
  const double availability =
      sent == 0 ? 1.0 : static_cast<double>(answered) /
                            static_cast<double>(sent);
  // Retry amplification: every retry and hedge drew from the token bucket,
  // so their total is bounded by the budget plus the refill earned from
  // successes (+1 covers a fractional token in flight).
  const uint64_t extra_attempts = client.stats().retries.load() +
                                  client.stats().hedges.load();
  const double amplification_cap =
      kBudgetTokens + kTokensPerSuccess * static_cast<double>(answered) + 1.0;
  printf("\nshard chaos (%s snapshots): %zu shards x %zu cycles, %" PRIu64
         " sent, %" PRIu64 " answered (%.1f%%), retries %" PRIu64
         ", hedges %" PRIu64 " (cap %.1f)\n",
         config.compressed_snapshots ? "compressed" : "raw",
         index.num_shards(), config.shard_cycles, sent, answered,
         100.0 * availability, client.stats().retries.load(),
         client.stats().hedges.load(), amplification_cap);
  if (availability < 0.95)
    violations->Report("availability below the 95% floor");
  if (static_cast<double>(extra_attempts) > amplification_cap)
    violations->Report("retry amplification exceeded the client budget");
}

/// Continuous-ingest kill/restart chaos: a durable IngestController takes
/// mutations under injected WAL-append / seal / compact / checkpoint / io
/// faults and is killed cold (destroyed, no checkpoint) after every round.
/// The invariant is exactly the WAL contract: acked <=> logged. A
/// fault-free, non-durable controller fed only the operations the durable
/// one acknowledged is the oracle; after every restart the recovered
/// visible id set and every kNN/range answer must match it bit for bit —
/// un-acked mutations must never resurface, acked ones must never vanish.
void RunIngestCase(const Config& config, const Dataset& ds,
                   Violations* violations) {
  fault::Disable();
  const std::string dir = "/tmp/sapla_chaos_ingest";
  ::mkdir(dir.c_str(), 0755);
  const auto scrub = [&] {
    std::remove((dir + "/wal.log").c_str());
    std::remove((dir + "/manifest.bin").c_str());
    for (size_t s = 0; s < 4; ++s)
      std::remove((dir + "/main.shard" + std::to_string(s) + ".snp").c_str());
  };
  scrub();

  IngestOptions opt;
  opt.memtable_max = 6;  // small thresholds: many seals/compactions per round
  opt.compact_min_minors = 2;
  opt.num_shards = 2;
  IngestController oracle(Method::kSapla, config.m, IndexKind::kRTree,
                          config.n, opt);
  IngestOptions durable = opt;
  durable.durable_dir = dir;

  std::vector<std::vector<double>> pool;
  Rng rng(config.seed ^ 0x16E57u);
  for (size_t i = 0; i < config.pool; ++i) {
    std::vector<double> q = ds.series[rng.UniformInt(ds.size())].values;
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);
    pool.push_back(std::move(q));
  }

  // The generation layouts legitimately differ (the durable side's seals
  // fault), so only the representation-independent answer is compared:
  // the (distance, id) neighbor lists, not traversal statistics.
  const auto audit = [&](const IngestController& ctrl,
                         const std::string& where) {
    if (ctrl.VisibleIds() != oracle.VisibleIds()) {
      violations->Report(where + ": recovered visible ids != acked history");
      return;
    }
    for (size_t i = 0; i < pool.size(); ++i) {
      if (ctrl.Knn(pool[i], config.k).neighbors !=
          oracle.Knn(pool[i], config.k).neighbors)
        violations->Report(where + ": knn answer " + std::to_string(i) +
                           " != acked-history oracle");
      if (ctrl.RangeSearch(pool[i], config.radius).neighbors !=
          oracle.RangeSearch(pool[i], config.radius).neighbors)
        violations->Report(where + ": range answer " + std::to_string(i) +
                           " != acked-history oracle");
    }
  };

  std::vector<uint64_t> alive;  // acked-inserted, not yet acked-deleted
  uint64_t acked = 0, refused = 0, replayed = 0;
  size_t source = 0;
  for (size_t round = 0; round <= config.ingest_rounds; ++round) {
    auto ctrl = std::make_unique<IngestController>(
        Method::kSapla, config.m, IndexKind::kRTree, config.n, durable);
    if (const Status st = ctrl->Recover(); !st.ok()) {
      violations->Report("ingest round " + std::to_string(round) +
                         ": recovery failed: " + st.ToString());
      scrub();
      return;
    }
    replayed = ctrl->metrics().wal_replayed.load();
    audit(*ctrl, "ingest round " + std::to_string(round) +
                     " (post-recovery)");
    // The last rebirth only audits; rounds before it mutate then die.
    if (round == config.ingest_rounds) break;

    fault::Enable(config.seed);
    for (size_t step = 0; step < config.ingest_ops; ++step) {
      const double dice = rng.Uniform();
      const std::string at = "ingest round " + std::to_string(round) +
                             " step " + std::to_string(step);
      if (dice < 0.16 && !alive.empty()) {
        const size_t pos = rng.UniformInt(alive.size());
        const uint64_t id = alive[pos];
        const Status st = ctrl->Delete(id);
        if (st.ok()) {
          fault::Disable();  // oracle mutations never consume the schedule
          if (!oracle.Delete(id).ok())
            violations->Report(at + ": oracle refused an acked delete");
          fault::Enable(config.seed);
          ++acked;
          alive[pos] = alive.back();
          alive.pop_back();
        } else if (st.code() == StatusCode::kNotFound) {
          // TTL-expired — the oracle agrees (same mutation clock); stop
          // retrying the id.
          alive[pos] = alive.back();
          alive.pop_back();
        } else {
          ++refused;
        }
      } else if (dice < 0.20) {
        // Seal/compact/checkpoint are performance events: visibility is
        // unchanged whether they succeed or fault, so no mirroring.
        (void)ctrl->Seal();
      } else if (dice < 0.24) {
        (void)ctrl->Compact();
      } else if (dice < 0.28) {
        (void)ctrl->Checkpoint();
      } else {
        const TimeSeries& ts = ds.series[source++ % ds.size()];
        const uint64_t ttl =
            rng.Uniform() < 0.1 ? 5 + rng.UniformInt(40) : 0;
        const auto id = ctrl->Insert(ts.values, ts.label, ttl);
        if (id.ok()) {
          fault::Disable();
          const auto mirror = oracle.Insert(ts.values, ts.label, ttl);
          if (!mirror.ok() || *mirror != *id)
            violations->Report(at + ": oracle id drifted from durable log");
          fault::Enable(config.seed);
          ++acked;
          alive.push_back(*id);
        } else {
          ++refused;
        }
      }
    }
    fault::Disable();
    ctrl.reset();  // the kill: no checkpoint, no farewell — the WAL is truth
  }

  printf("\ningest chaos: %zu rounds x %zu ops, %" PRIu64 " acked, %" PRIu64
         " refused by faults, %" PRIu64 " replayed on the final recovery\n",
         config.ingest_rounds, config.ingest_ops, acked, refused, replayed);
  scrub();
}

/// Memory-budget pressure chaos (no injected faults — the pressure is
/// real): the serving and ingest tiers run against a global ResourceBudget
/// capped at HALF the working set an unpressured run actually used. The
/// graded responses (cache shrink, forced compaction, write shedding,
/// degraded reads) must keep the process alive, every OK answer must stay
/// bit-identical to the unpressured oracle, failures must stay within
/// {kOverloaded, kUnavailable, kResourceExhausted}, and after the cap is
/// lifted the stack must recover fully — health back to healthy, caches
/// re-warming, no leaked reservations.
void RunMemPressureCase(const Config& config, const Dataset& ds,
                        Violations* violations) {
  fault::Disable();
  SimilarityIndex index(Method::kSapla, config.m, IndexKind::kRTree);
  if (const Status st = index.Build(ds); !st.ok()) {
    violations->Report("mem-pressure: index build failed: " + st.ToString());
    return;
  }

  std::vector<std::vector<double>> pool;
  Rng rng(config.seed ^ 0xB4D6Eu);
  for (size_t i = 0; i < config.pool; ++i) {
    std::vector<double> q = ds.series[rng.UniformInt(ds.size())].values;
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);
    pool.push_back(std::move(q));
  }
  std::vector<KnnResult> exact_knn, lb_knn;
  for (const std::vector<double>& q : pool) {
    exact_knn.push_back(index.Knn(q, config.k));
    lb_knn.push_back(index.KnnLowerBound(q, config.k));
  }

  ServeOptions serve;
  serve.queue_capacity = 64;
  serve.max_batch = 8;
  serve.max_delay_us = 200;
  serve.cache_capacity = 64;

  // Phase 1 — measure: an unlimited budget observes the natural serving
  // working set (queued payloads + a warm cache).
  auto probe = ResourceBudget::MakeRoot("chaos", 0);
  {
    ServeOptions measured = serve;
    measured.memory_budget = probe;
    QueryService service(index, measured);
    for (size_t i = 0; i < config.queries; ++i)
      (void)service.Knn(pool[i % pool.size()], config.k);
    service.Stop();
  }
  const uint64_t peak = probe->peak_used();
  if (probe->used() != 0) {
    violations->Report("mem-pressure: " + std::to_string(probe->used()) +
                       " bytes leaked after the unpressured serve run");
  }
  if (peak == 0) {
    violations->Report("mem-pressure: unpressured run reserved nothing — "
                       "the budget is not wired");
    return;
  }

  // Phase 2 — serve at 50% of the natural working set.
  auto budget = ResourceBudget::MakeRoot("chaos", peak / 2);
  ServeOptions pressured = serve;
  pressured.memory_budget = budget;
  QueryService service(index, pressured);
  uint64_t ok_exact = 0, ok_approx = 0, shed = 0;
  const auto drive = [&](const char* tag, uint64_t* exact_out) {
    for (size_t i = 0; i < config.queries; ++i) {
      const size_t qi = i % pool.size();
      const ServeResponse r = service.Knn(pool[qi], config.k);
      const std::string where = std::string("mem-pressure ") + tag +
                                " query " + std::to_string(i);
      if (r.status.ok()) {
        if (r.approximate) {
          ++ok_approx;
          if (!SameResult(r.result, lb_knn[qi]))
            violations->Report(where +
                               ": approximate answer != lower-bound oracle");
        } else {
          ++*exact_out;
          if (!SameResult(r.result, exact_knn[qi]))
            violations->Report(where + ": OK answer != unpressured oracle");
        }
      } else if (r.status.code() != StatusCode::kOverloaded &&
                 r.status.code() != StatusCode::kUnavailable &&
                 r.status.code() != StatusCode::kResourceExhausted) {
        violations->Report(where + ": disallowed status " +
                           r.status.ToString());
      } else {
        ++shed;
      }
    }
  };
  drive("capped", &ok_exact);
  const uint64_t shrinks = service.metrics().budget_cache_shrinks.load();
  const uint64_t degraded = service.metrics().budget_degraded.load();

  // Phase 3 — lift the cap; the stack must return to fully exact service.
  budget->SetCapacity(0);
  uint64_t recovered_exact = 0;
  drive("post-lift", &recovered_exact);
  // One extra pass so cache re-warming is observable after recovery.
  const uint64_t hits_before = service.metrics().cache_hits.load();
  for (size_t i = 0; i < pool.size(); ++i)
    (void)service.Knn(pool[i], config.k);
  const uint64_t hits_after = service.metrics().cache_hits.load();
  if (service.health() != ServeHealth::kHealthy)
    violations->Report("mem-pressure: health did not return to healthy "
                       "after the cap was lifted");
  if (recovered_exact == 0)
    violations->Report("mem-pressure: no exact answers after recovery");
  if (hits_after <= hits_before)
    violations->Report("mem-pressure: cache did not re-warm after recovery");
  service.Stop();

  // Phase 4 — ingest under the same 50% discipline: a capped controller
  // sheds some writes but every acked mutation stays queryable, matching
  // an uncapped oracle fed only the acked operations.
  IngestOptions iopt;
  iopt.memtable_max = 8;
  iopt.compact_min_minors = 2;
  auto iprobe = ResourceBudget::MakeRoot("chaos-ingest", 0);
  {
    IngestOptions measured = iopt;
    measured.memory_budget = iprobe;
    IngestController ctrl(Method::kSapla, config.m, IndexKind::kRTree,
                          config.n, measured);
    for (size_t i = 0; i < ds.size(); ++i)
      (void)ctrl.Insert(ds.series[i].values, ds.series[i].label);
  }
  if (iprobe->used() != 0)
    violations->Report("mem-pressure: ingest leaked " +
                       std::to_string(iprobe->used()) + " budget bytes");
  auto ibudget =
      ResourceBudget::MakeRoot("chaos-ingest", iprobe->peak_used() / 2);
  IngestOptions capped = iopt;
  capped.memory_budget = ibudget;
  IngestController ctrl(Method::kSapla, config.m, IndexKind::kRTree,
                        config.n, capped);
  IngestController oracle(Method::kSapla, config.m, IndexKind::kRTree,
                          config.n, iopt);
  uint64_t acked = 0, refused = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    const auto id = ctrl.Insert(ds.series[i].values, ds.series[i].label);
    if (id.ok()) {
      ++acked;
      const auto mirror = oracle.Insert(ds.series[i].values,
                                        ds.series[i].label);
      if (!mirror.ok() || *mirror != *id)
        violations->Report("mem-pressure: ingest oracle id drifted");
    } else if (id.status().code() == StatusCode::kOverloaded) {
      ++refused;
    } else {
      violations->Report("mem-pressure: insert " + std::to_string(i) +
                         " failed with disallowed status " +
                         id.status().ToString());
    }
  }
  if (ctrl.VisibleIds() != oracle.VisibleIds())
    violations->Report("mem-pressure: capped ingest visible ids != oracle");
  for (size_t i = 0; i < pool.size(); ++i)
    if (ctrl.Knn(pool[i], config.k).neighbors !=
        oracle.Knn(pool[i], config.k).neighbors)
      violations->Report("mem-pressure: capped ingest answer " +
                         std::to_string(i) + " != acked-history oracle");
  // Lift the cap: shedding must stop.
  ibudget->SetCapacity(0);
  uint64_t post_lift_acked = 0;
  for (size_t i = 0; i < 16; ++i) {
    const TimeSeries& ts = ds.series[i % ds.size()];
    const auto id = ctrl.Insert(ts.values, ts.label);
    if (id.ok()) {
      ++post_lift_acked;
      (void)oracle.Insert(ts.values, ts.label);
    }
  }
  if (post_lift_acked != 16)
    violations->Report("mem-pressure: inserts still shed after the ingest "
                       "cap was lifted");
  const uint64_t forced = ctrl.metrics().budget_forced_compactions.load();

  printf("\nmem-pressure chaos: serve peak %" PRIu64 " B capped to %" PRIu64
         " B: %" PRIu64 " exact, %" PRIu64 " degraded, %" PRIu64
         " shed, %" PRIu64 " cache shrinks, %" PRIu64
         " budget-degraded; ingest: %" PRIu64 " acked, %" PRIu64
         " shed, %" PRIu64 " forced compactions\n",
         peak, peak / 2, ok_exact + recovered_exact, ok_approx, shed,
         shrinks, degraded, acked, refused, forced);
}

/// Disk-full chaos: the durable ingest path runs with ENOSPC-style faults
/// armed on the WAL and every atomic writer ("io/disk_full",
/// "ingest/wal_full" with code `exhausted`, plus "ingest/wal_torn" short
/// writes). A full disk must surface as a clean refusal — the acknowledged
/// history and the on-disk artifacts stay intact through kill/recover —
/// and once space "returns" (faults disabled) the stack works again.
void RunDiskFullCase(const Config& config, const Dataset& ds,
                     Violations* violations) {
  // Drop the serving-phase schedule entirely: this phase arms only the
  // ENOSPC-flavoured points, so every refusal is attributable to "disk
  // full" and the expected-code assertions stay exact.
  fault::Reset();
  const std::string disk_spec =
      "seed=" + std::to_string(config.seed) +
      ";io/disk_full=p0.25,cexhausted"
      ";ingest/wal_full=p0.1,cexhausted"
      ";ingest/wal_torn=p0.08";
  if (const Status st = fault::ConfigureFromSpec(disk_spec); !st.ok()) {
    violations->Report("disk-full: bad spec: " + st.ToString());
    return;
  }
  fault::Disable();

  // Archive saves under disk-full faults: failures must be
  // kResourceExhausted and the previous archive must stay intact.
  {
    const auto reducer = MakeReducer(Method::kSapla);
    RepresentationStore store;
    for (const TimeSeries& ts : ds.series)
      reducer->ReduceInto(ts.values, config.m, &store);
    const std::string path = "/tmp/sapla_chaos_diskfull_store.bin";
    std::remove(path.c_str());
    if (const Status st = SaveRepresentationStore(path, store); !st.ok()) {
      violations->Report("disk-full: fault-free save failed: " +
                         st.ToString());
      return;
    }
    fault::Enable(config.seed);
    uint64_t refused_saves = 0;
    for (size_t round = 0; round < config.io_rounds; ++round) {
      const Status st = SaveRepresentationStore(path, store);
      if (!st.ok()) {
        ++refused_saves;
        if (st.code() != StatusCode::kResourceExhausted)
          violations->Report("disk-full: save round " +
                             std::to_string(round) + ": expected "
                             "kResourceExhausted, got " + st.ToString());
      }
      fault::Disable();
      const auto loaded = LoadRepresentationStore(path);
      if (!loaded.ok() || !(*loaded == store))
        violations->Report("disk-full: archive damaged after save round " +
                           std::to_string(round));
      fault::Enable(config.seed);
    }
    fault::Disable();
    std::remove(path.c_str());
    printf("\ndisk-full chaos: %zu save rounds, %" PRIu64
           " refused cleanly\n",
           config.io_rounds, refused_saves);
  }

  // Durable ingest with the disk intermittently "full": acked <=> logged
  // must hold through every kill/recover, exactly as in the ingest phase.
  const std::string dir = "/tmp/sapla_chaos_diskfull";
  ::mkdir(dir.c_str(), 0755);
  const auto scrub = [&] {
    std::remove((dir + "/wal.log").c_str());
    std::remove((dir + "/manifest.bin").c_str());
    for (size_t s = 0; s < 4; ++s)
      std::remove((dir + "/main.shard" + std::to_string(s) + ".snp").c_str());
  };
  scrub();
  IngestOptions opt;
  opt.memtable_max = 6;
  opt.compact_min_minors = 2;
  IngestController oracle(Method::kSapla, config.m, IndexKind::kRTree,
                          config.n, opt);
  IngestOptions durable = opt;
  durable.durable_dir = dir;

  uint64_t acked = 0, refused = 0;
  size_t source = 0;
  for (size_t round = 0; round <= config.ingest_rounds; ++round) {
    auto ctrl = std::make_unique<IngestController>(
        Method::kSapla, config.m, IndexKind::kRTree, config.n, durable);
    if (const Status st = ctrl->Recover(); !st.ok()) {
      violations->Report("disk-full round " + std::to_string(round) +
                         ": recovery failed: " + st.ToString());
      scrub();
      return;
    }
    if (ctrl->VisibleIds() != oracle.VisibleIds())
      violations->Report("disk-full round " + std::to_string(round) +
                         ": recovered ids != acked history");
    const bool last = round == config.ingest_rounds;
    // The final round mutates fault-free: with space back, everything must
    // ack again and the WAL must accept appends (full recovery).
    if (!last) fault::Enable(config.seed);
    const size_t ops = last ? 32 : config.ingest_ops;
    uint64_t round_acked = 0;
    for (size_t step = 0; step < ops; ++step) {
      const TimeSeries& ts = ds.series[source++ % ds.size()];
      const auto id = ctrl->Insert(ts.values, ts.label);
      if (id.ok()) {
        fault::Disable();
        const auto mirror = oracle.Insert(ts.values, ts.label);
        if (!mirror.ok() || *mirror != *id)
          violations->Report("disk-full: oracle id drifted at round " +
                             std::to_string(round));
        if (!last) fault::Enable(config.seed);
        ++acked;
        ++round_acked;
      } else if (id.status().code() == StatusCode::kResourceExhausted ||
                 id.status().code() == StatusCode::kIOError ||
                 id.status().code() == StatusCode::kUnavailable) {
        ++refused;  // clean refusal; the mutation was never acked
      } else {
        violations->Report("disk-full round " + std::to_string(round) +
                           ": disallowed status " + id.status().ToString());
      }
      if (!last && step % 16 == 9) (void)ctrl->Checkpoint();
    }
    fault::Disable();
    if (last && round_acked != ops)
      violations->Report("disk-full: writes still refused after the disk "
                         "faults were lifted");
    ctrl.reset();  // kill without checkpoint; the WAL is truth
  }
  printf("disk-full chaos: %zu rounds, %" PRIu64 " acked, %" PRIu64
         " refused cleanly, history intact\n",
         config.ingest_rounds, acked, refused);
  scrub();
}

int Run(int argc, char** argv) {
#ifdef SAPLA_FAULT_DISABLED
  (void)argc;
  (void)argv;
  fprintf(stderr,
          "sapla_chaos needs a build with SAPLA_FAULT=ON (fault injection "
          "is compiled out)\n");
  return 2;
#else
  const Config config = ParseFlags(argc, argv);

  // Default schedule: every serving-layer fault point armed at ~1%, plus
  // latency injection in the pool workers and the scheduler.
  std::string spec = "seed=" + std::to_string(config.seed) +
                     ";queue/admit=p0.01"
                     ";serve/flush=p0.01"
                     ";serve/flush_stall=p0.002,d2000"
                     ";parallel/worker=p0.01,d100"
                     ";io/write=p0.05;io/fsync=p0.02;io/rename=p0.02";
  if (config.ingest)
    spec +=
        ";ingest/wal_append=p0.03"
        ";ingest/seal=p0.05"
        ";ingest/compact=p0.05"
        ";ingest/checkpoint=p0.2";
  if (!config.spec.empty()) spec = config.spec;
  if (const Status st = fault::ConfigureFromSpec(spec); !st.ok()) {
    fprintf(stderr, "bad fault spec: %s\n", st.ToString().c_str());
    return 2;
  }
  fault::Disable();  // armed per phase; baselines stay fault-free

  SyntheticOptions opt;
  opt.length = config.n;
  opt.num_series = config.series;
  const Dataset ds = MakeSyntheticDataset(17, opt);

  Violations violations;
  Tally tally;
  size_t cases = 0;
  for (const Method method : AllMethods()) {
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
      RunServeCase(config, method, kind, ds, &violations, &tally);
      ++cases;
    }
  }
  RunIoCase(config, ds, &violations);
  if (config.shards >= 2) RunShardCase(config, ds, &violations);
  if (config.ingest) RunIngestCase(config, ds, &violations);
  if (config.mem_pressure) RunMemPressureCase(config, ds, &violations);
  // Last: it re-arms its own fault schedule (ENOSPC-flavoured points).
  if (config.disk_full) RunDiskFullCase(config, ds, &violations);

  const uint64_t responses = tally.ok_exact + tally.ok_cached +
                             tally.ok_approximate + tally.overloaded +
                             tally.deadline + tally.unavailable + tally.other;
  printf("\nchaos run: seed=%" PRIu64 ", %zu cases x %zu queries = %" PRIu64
         " responses\n",
         config.seed, cases, config.queries, responses);
  printf("  ok exact          %" PRIu64 "\n", tally.ok_exact);
  printf("  ok cached         %" PRIu64 "\n", tally.ok_cached);
  printf("  ok approximate    %" PRIu64 "\n", tally.ok_approximate);
  printf("  overloaded        %" PRIu64 "\n", tally.overloaded);
  printf("  deadline_exceeded %" PRIu64 "\n", tally.deadline);
  printf("  unavailable       %" PRIu64 "\n", tally.unavailable);

  printf("\nfault points (evaluations -> triggers):\n");
  for (const fault::PointStats& p : fault::Stats())
    printf("  %-22s %10" PRIu64 " -> %" PRIu64 "\n", p.name.c_str(),
           p.evaluations, p.triggers);

  fault::Reset();
  if (violations.count != 0) {
    fprintf(stderr, "\n%" PRIu64 " invariant violation(s)\n",
            violations.count);
    return 1;
  }
  printf("\nall invariants held\n");
  return 0;
#endif  // SAPLA_FAULT_DISABLED
}

}  // namespace
}  // namespace sapla

int main(int argc, char** argv) { return sapla::Run(argc, argv); }
