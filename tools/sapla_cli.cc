// sapla_cli — command-line front end for the library.
//
//   sapla_cli info      <data.tsv>
//   sapla_cli reduce    <data.tsv> [--method=SAPLA] [--m=24] [--out=reps.txt]
//                       [--format=v1|v2|v4] [--quant-ab=STEP]
//                       [--quant-coeff=STEP]
//   sapla_cli reconstruct <reps.txt|reps.bin> [--out=recon.tsv]
//   sapla_cli knn       <data.tsv> [--query=0 | --queries=0,3,7] [--k=5]
//                       [--method=SAPLA] [--m=24] [--tree=dbch|rtree]
//   sapla_cli motif     <data.tsv> [--row=0] [--window=64] [--m=24]
//   sapla_cli synth     <out.tsv> [--dataset=0] [--length=256] [--series=40]
//   sapla_cli explain   <data.tsv> [--query=0] [--k=5] [--method=SAPLA]
//                       [--m=24] [--shards=1] [--json=0] [--trace-out=t.json]
//
// Every command accepts --threads=T (default 1): the index build fans the
// per-series reduction across T threads, and `knn` with --queries runs the
// batch engine. --threads=0 uses the hardware concurrency.
//
// Data files are UCR2018 format: one series per line, label first,
// tab/comma separated. Representation files use the ts/io.h formats:
// --format=v1 writes the per-representation text format, --format=v2 the
// binary columnar RepresentationStore format, --format=v4 the framed
// codec format (required for --quant-ab/--quant-coeff fixed-point
// quantization, which records per-series lower-bound slack so quantized
// archives still prune soundly); `reconstruct` auto-detects
// both. `synth` materializes a deterministic synthetic dataset
// (ts/synthetic_archive.h) so a pipeline can be exercised without the UCR
// archive.

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/sapla.h"
#include "reduction/column_codec.h"
#include "obs/explain.h"
#include "obs/trace.h"
#include "search/knn.h"
#include "search/sharded_index.h"
#include "search/metrics.h"
#include "search/subsequence.h"
#include "ts/io.h"
#include "ts/synthetic_archive.h"
#include "ts/ucr_loader.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/timer.h"

namespace sapla {
namespace {

[[noreturn]] void Usage() {
  fprintf(stderr,
          "usage: sapla_cli <info|reduce|reconstruct|knn|motif|synth|explain> "
          "<file> [--key=value ...]\n");
  exit(2);
}

/// Strict size_t parse: the whole token must be digits. A typo'd numeric
/// flag is a hard error, never silently zero (the old strtoull behaviour).
size_t ParseSizeOrDie(const std::string& key, const std::string& value) {
  size_t parsed = 0;
  const auto res =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (res.ec != std::errc() || res.ptr != value.data() + value.size()) {
    fprintf(stderr, "--%s=%s is not a non-negative integer\n", key.c_str(),
            value.c_str());
    exit(2);
  }
  return parsed;
}

struct Args {
  std::string command;
  std::string file;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& dflt) const {
    const auto it = flags.find(key);
    return it == flags.end() ? dflt : it->second;
  }
  size_t GetSize(const std::string& key, size_t dflt) const {
    const auto it = flags.find(key);
    return it == flags.end() ? dflt : ParseSizeOrDie(key, it->second);
  }
  double GetDouble(const std::string& key, double dflt) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return dflt;
    char* end = nullptr;
    const double parsed = strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || !(parsed >= 0.0)) {
      fprintf(stderr, "--%s=%s is not a non-negative number\n", key.c_str(),
              it->second.c_str());
      exit(2);
    }
    return parsed;
  }
};

Args Parse(int argc, char** argv) {
  if (argc < 3) Usage();
  // Every flag any command understands; an unrecognized flag is a hard
  // error instead of a silently ignored typo.
  static const char* kKnownFlags[] = {
      "length", "max-series", "znorm",  "method", "m",      "out",
      "format", "query",      "queries", "k",     "tree",   "row",
      "window", "stride",     "dataset", "series", "threads", "fault",
      "shards", "json",       "trace-out", "quant-ab", "quant-coeff"};
  Args args;
  args.command = argv[1];
  args.file = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) Usage();
    const std::string key = arg.substr(2, eq - 2);
    bool known = false;
    for (const char* f : kKnownFlags) known |= key == f;
    if (!known) {
      fprintf(stderr, "unknown flag --%s\n", key.c_str());
      exit(2);
    }
    args.flags[key] = arg.substr(eq + 1);
  }
  return args;
}

Method ParseMethod(const std::string& name) {
  for (const Method m : AllMethods())
    if (MethodName(m) == name) return m;
  fprintf(stderr, "unknown method '%s'\n", name.c_str());
  exit(2);
}

Dataset LoadOrDie(const Args& args) {
  UcrLoadOptions opt;
  opt.target_length = args.GetSize("length", 0);
  opt.max_series = args.GetSize("max-series", 0);
  opt.z_normalize = args.Get("znorm", "1") != "0";
  const auto loaded = LoadUcrDataset(args.file, opt);
  if (!loaded.ok()) {
    fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    exit(1);
  }
  return *loaded;
}

int CmdInfo(const Args& args) {
  const Dataset ds = LoadOrDie(args);
  printf("dataset: %s\n", ds.name.c_str());
  printf("series:  %zu\n", ds.size());
  printf("length:  %zu\n", ds.length());
  std::map<int, size_t> labels;
  for (const TimeSeries& ts : ds.series) ++labels[ts.label];
  printf("classes: %zu (", labels.size());
  bool first = true;
  for (const auto& [label, count] : labels) {
    printf("%s%d:%zu", first ? "" : ", ", label, count);
    first = false;
  }
  printf(")\n");
  return 0;
}

int CmdReduce(const Args& args) {
  const Dataset ds = LoadOrDie(args);
  const Method method = ParseMethod(args.Get("method", "SAPLA"));
  const size_t m = args.GetSize("m", 24);
  const std::string out = args.Get("out", "reps.txt");

  const std::string format = args.Get("format", "v1");
  if (format != "v1" && format != "v2" && format != "v4") {
    fprintf(stderr, "unknown --format '%s' (v1, v2 or v4)\n", format.c_str());
    return 2;
  }
  // Optional fixed-point quantization (reduction/column_codec.h): snaps
  // segment coefficients / transform coefficients to the grid and records
  // the lower-bound slack. Forces the v4 archive (v1/v2 cannot carry the
  // slack column).
  StoreCodecOptions codec;
  codec.ab_step = args.GetDouble("quant-ab", 0.0);
  codec.coeff_step = args.GetDouble("quant-coeff", 0.0);
  if (!codec.lossless() && format != "v4") {
    fprintf(stderr, "--quant-ab/--quant-coeff require --format=v4\n");
    return 2;
  }

  const auto reducer = MakeReducer(method);
  WallTimer timer;
  std::vector<Representation> reps(ds.size());
  ParallelFor(0, ds.size(), [&](size_t i) {
    reps[i] = reducer->Reduce(ds.series[i].values, m);
  });
  double dev = 0.0;
  for (size_t i = 0; i < ds.size(); ++i)
    dev += reps[i].SumMaxDeviation(ds.series[i].values);
  const double seconds = timer.Seconds();
  Status saved = Status::OK();
  if (format == "v2" || format == "v4") {
    RepresentationStore store;
    for (const Representation& rep : reps) store.Append(rep);
    if (!codec.lossless()) {
      auto quantized = QuantizeStore(store, codec);
      if (!quantized.ok()) {
        fprintf(stderr, "%s\n", quantized.status().ToString().c_str());
        return 1;
      }
      store = std::move(quantized).ValueOrDie();
    }
    saved = SaveRepresentationStore(
        out, store, format == "v4" ? StoreFormat::kV4 : StoreFormat::kAuto);
  } else {
    saved = SaveRepresentations(out, reps);
  }
  if (!saved.ok()) {
    fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  printf("%zu series reduced with %s (M=%zu) in %.3fs wall on %zu threads\n",
         ds.size(), MethodName(method).c_str(), m, seconds, NumThreads());
  printf("avg sum-max-deviation: %.4f\n", dev / static_cast<double>(ds.size()));
  printf("wrote %s (%s)\n", out.c_str(), format.c_str());
  return 0;
}

int CmdReconstruct(const Args& args) {
  // LoadRepresentationStore auto-detects the v2 binary format and migrates
  // v1 text; plain LoadRepresentations is the fallback for heterogeneous
  // v1 archives (which have no columnar form).
  std::vector<Representation> reps;
  const auto store = LoadRepresentationStore(args.file);
  if (store.ok()) {
    for (size_t i = 0; i < store->size(); ++i)
      reps.push_back(store->ToRepresentation(i));
  } else {
    const auto loaded = LoadRepresentations(args.file);
    if (!loaded.ok()) {
      // Neither reader accepted the file; show both diagnoses — the store
      // error usually names the corrupt section, the v1 error the line.
      fprintf(stderr, "cannot read %s as a store: %s\n", args.file.c_str(),
              store.status().ToString().c_str());
      fprintf(stderr, "cannot read %s as v1 text: %s\n", args.file.c_str(),
              loaded.status().ToString().c_str());
      return 1;
    }
    reps = *loaded;
  }
  const std::string out = args.Get("out", "recon.tsv");
  Dataset recon;
  recon.name = "reconstruction";
  for (const Representation& rep : reps)
    recon.series.emplace_back(rep.Reconstruct());
  if (Status s = SaveDatasetTsv(out, recon); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("reconstructed %zu series -> %s\n", reps.size(), out.c_str());
  return 0;
}

int CmdSynth(const Args& args) {
  SyntheticOptions opt;
  opt.length = args.GetSize("length", 256);
  opt.num_series = args.GetSize("series", 40);
  const Dataset ds = MakeSyntheticDataset(args.GetSize("dataset", 0), opt);
  if (Status s = SaveDatasetTsv(args.file, ds); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("wrote %s: %zu series of length %zu (%s)\n", args.file.c_str(),
         ds.size(), ds.length(), ds.name.c_str());
  return 0;
}

int CmdKnn(const Args& args) {
  const Dataset ds = LoadOrDie(args);
  const Method method = ParseMethod(args.Get("method", "SAPLA"));
  const size_t m = args.GetSize("m", 24);
  const size_t k = args.GetSize("k", 5);
  const IndexKind kind = args.Get("tree", "dbch") == "rtree"
                             ? IndexKind::kRTree
                             : IndexKind::kDbchTree;

  // One row via --query=N, or a comma-separated batch via --queries=a,b,c.
  std::vector<size_t> query_rows;
  if (const std::string list = args.Get("queries", ""); !list.empty()) {
    size_t start = 0;
    while (start <= list.size()) {
      const size_t comma = list.find(',', start);
      const std::string tok = list.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      query_rows.push_back(ParseSizeOrDie("queries", tok));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  } else {
    query_rows.push_back(args.GetSize("query", 0));
  }
  for (const size_t row : query_rows) {
    if (row >= ds.size()) {
      fprintf(stderr, "query row %zu out of range\n", row);
      return 1;
    }
  }

  SimilarityIndex index(method, m, kind);
  BuildInfo info;
  if (Status s = index.Build(ds, &info); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<std::vector<double>> queries;
  for (const size_t row : query_rows) queries.push_back(ds.series[row].values);
  WallTimer timer;
  const std::vector<KnnResult> results = index.KnnBatch(queries, k);
  const double seconds = timer.Seconds();

  size_t total_measured = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const KnnResult& res = results[qi];
    printf("%zu-NN of row %zu (%s, M=%zu, %s):\n", k, query_rows[qi],
           MethodName(method).c_str(), m,
           kind == IndexKind::kRTree ? "R-tree" : "DBCH-tree");
    for (const auto& [dist, id] : res.neighbors)
      printf("  row %4zu  distance %10.4f  label %d\n", id, dist,
             ds.series[id].label);
    printf("measured %zu/%zu raw series (pruning power %.3f)\n",
           res.num_measured, ds.size(), PruningPower(res, ds.size()));
    total_measured += res.num_measured;
  }
  printf("%zu queries on %zu threads in %.4fs wall (%zu raw measurements)\n",
         queries.size(), NumThreads(), seconds, total_measured);
  return 0;
}

int CmdExplain(const Args& args) {
  const Dataset ds = LoadOrDie(args);
  const Method method = ParseMethod(args.Get("method", "SAPLA"));
  const size_t m = args.GetSize("m", 24);
  const size_t k = args.GetSize("k", 5);
  const size_t row = args.GetSize("query", 0);
  const size_t shards = args.GetSize("shards", 1);
  const bool json = args.Get("json", "0") != "0";
  const std::string trace_out = args.Get("trace-out", "");
  if (row >= ds.size()) {
    fprintf(stderr, "query row %zu out of range\n", row);
    return 1;
  }

  ShardedIndex::Options opt;
  opt.num_shards = shards == 0 ? 1 : shards;
  ShardedIndex index(method, m, IndexKind::kDbchTree, opt);
  if (Status s = index.Build(ds); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  if (!trace_out.empty()) obs::SetTraceEnabled(true);
  obs::QueryExplain explain;
  {
    obs::TraceContextScope scope(obs::MintTraceContext());
    SAPLA_TRACE_SPAN("cli/explain");
    (void)index.KnnExplain(ds.series[row].values, k, &explain);
  }
  if (!trace_out.empty()) {
    obs::SetTraceEnabled(false);
    if (Status s = obs::WriteChromeTraceStatus(trace_out); !s.ok()) {
      fprintf(stderr, "cannot write %s: %s\n", trace_out.c_str(),
              s.ToString().c_str());
      return 1;
    }
  }

  if (json) {
    printf("%s\n", QueryExplainToJson(explain).c_str());
    return 0;
  }
  printf("query row %zu, k=%zu, %s (M=%zu), %zu shard(s)\n", row, k,
         MethodName(method).c_str(), m, index.num_shards());
  printf("trace_id %llu, total %llu us, epoch %llu, approximate %s\n",
         static_cast<unsigned long long>(explain.trace_id),
         static_cast<unsigned long long>(explain.total_us),
         static_cast<unsigned long long>(explain.epoch_seq),
         explain.approximate ? "yes" : "no");
  for (const obs::StageExplain& stage : explain.stages)
    printf("  stage %-12s %8llu us\n", stage.stage.c_str(),
           static_cast<unsigned long long>(stage.dur_us));
  for (const obs::ShardExplain& part : explain.parts)
    printf("  part  %-12s %8llu us  %s  %zu results  %llu lb evals  "
           "%llu measured\n",
           part.part.c_str(), static_cast<unsigned long long>(part.dur_us),
           obs::ExplainHealthName(part.health), part.results,
           static_cast<unsigned long long>(part.counters.lb_evaluations),
           static_cast<unsigned long long>(part.counters.exact_evaluations));
  printf("totals: %llu lb evals, %llu raw distances\n",
         static_cast<unsigned long long>(explain.counters.lb_evaluations),
         static_cast<unsigned long long>(explain.counters.exact_evaluations));
  return 0;
}

int CmdMotif(const Args& args) {
  const Dataset ds = LoadOrDie(args);
  const size_t row = args.GetSize("row", 0);
  if (row >= ds.size()) {
    fprintf(stderr, "row %zu out of range\n", row);
    return 1;
  }
  SubsequenceIndex::Options opt;
  opt.window = args.GetSize("window", 64);
  opt.budget_m = args.GetSize("m", 24);
  opt.stride = args.GetSize("stride", 1);
  auto index = SubsequenceIndex::Build(ds.series[row].values, opt);
  if (!index.ok()) {
    fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  size_t partner = 0;
  const SubsequenceMatch motif = (*index)->FindMotif(&partner);
  printf("best motif in row %zu (window %zu): offsets %zu and %zu, "
         "distance %.4f\n",
         row, opt.window, motif.offset, partner, motif.distance);
  return 0;
}

int Run(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  SetNumThreads(args.GetSize("threads", 1));  // 0 = hardware concurrency
  // --fault=SPEC arms the fault-injection framework (util/fault.h) for
  // ad-hoc failure-path testing; compiled out under SAPLA_FAULT=OFF.
  if (const std::string spec = args.Get("fault", ""); !spec.empty()) {
    if (const Status st = fault::ConfigureFromSpec(spec); !st.ok()) {
      fprintf(stderr, "bad --fault spec: %s\n", st.ToString().c_str());
      return 2;
    }
  }
  if (args.command == "info") return CmdInfo(args);
  if (args.command == "reduce") return CmdReduce(args);
  if (args.command == "reconstruct") return CmdReconstruct(args);
  if (args.command == "knn") return CmdKnn(args);
  if (args.command == "motif") return CmdMotif(args);
  if (args.command == "synth") return CmdSynth(args);
  if (args.command == "explain") return CmdExplain(args);
  Usage();
}

}  // namespace
}  // namespace sapla

int main(int argc, char** argv) { return sapla::Run(argc, argv); }
