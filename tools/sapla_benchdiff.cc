// sapla_benchdiff — regression gate over two bench JSON files.
//
//   sapla_benchdiff <baseline.json> <current.json>
//                   [--tolerance=0.25] [--slack=0] [--metrics=QPS,P99us]
//
// Both inputs are the machine-readable output of util/table.h Table::ToJson
// (what every bench_* binary writes via --json):
//
//   {"title": "...", "rows": [{"Mode": "direct", "QPS": 13000, ...}, ...]}
//
// Rows are matched between the two files by their *string-valued* cells
// (the configuration axis: mode, method, shard count rendered as a label);
// numeric cells present in both versions of a row are then compared. The
// direction of "worse" is inferred from the column name:
//
//   higher is better   QPS, *throughput*, *rate*, *power*, *hit*, *"/s"*
//   lower is better    *us, *_s, *lat*, *err*, *drop*, *miss*, *dev*
//   neither            informational only (never gates)
//
// A comparison fails when the current value is worse than the baseline by
// more than `tolerance` (relative fraction) plus `slack` (absolute, same
// unit as the column — use it to forgive scheduler jitter in µs columns).
// A baseline row missing from the current file also fails: losing coverage
// must be loud. New rows and improvements are reported but never fail.
//
// Exit code: 0 all gated comparisons within tolerance, 1 regression(s),
// 2 usage or parse error. CI diffs a fresh bench run against the committed
// baseline under bench/baselines/ with a generous tolerance — shared
// runners are noisy, so the gate is for catastrophic regressions (an
// accidental O(n^2), a disabled cache), not microbenchmark drift.
//
// Standalone by design (no sapla dependency): the parser accepts exactly
// the JSON subset Table::ToJson emits.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for the Table::ToJson shape.

struct Cell {
  bool is_number = false;
  double number = 0.0;
  std::string text;
};

struct BenchFile {
  std::string title;
  // Insertion-ordered keys per row (column order matters for row identity).
  std::vector<std::vector<std::pair<std::string, Cell>>> rows;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(BenchFile* out, std::string* error) {
    if (!Expect('{')) return Fail(error, "expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Peek() == '}') { ++pos_; break; }
      if (!first && !Expect(',')) return Fail(error, "expected ','");
      first = false;
      std::string key;
      if (!ParseString(&key)) return Fail(error, "expected object key");
      if (!Expect(':')) return Fail(error, "expected ':'");
      if (key == "title") {
        if (!ParseString(&out->title)) return Fail(error, "bad title");
      } else if (key == "rows") {
        if (!ParseRows(out, error)) return false;
      } else {
        return Fail(error, "unknown top-level key '" + key + "'");
      }
    }
    SkipWs();
    if (pos_ != text_.size()) return Fail(error, "trailing characters");
    return true;
  }

 private:
  bool ParseRows(BenchFile* out, std::string* error) {
    if (!Expect('[')) return Fail(error, "expected '['");
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      std::vector<std::pair<std::string, Cell>> row;
      if (!ParseRow(&row, error)) return false;
      out->rows.push_back(std::move(row));
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return Fail(error, "expected ',' or ']' in rows");
    }
  }

  bool ParseRow(std::vector<std::pair<std::string, Cell>>* row,
                std::string* error) {
    if (!Expect('{')) return Fail(error, "expected '{' for row");
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      std::string key;
      if (!ParseString(&key)) return Fail(error, "expected row key");
      if (!Expect(':')) return Fail(error, "expected ':' in row");
      Cell cell;
      if (!ParseCell(&cell, error)) return false;
      row->emplace_back(std::move(key), std::move(cell));
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return Fail(error, "expected ',' or '}' in row");
    }
  }

  bool ParseCell(Cell* cell, std::string* error) {
    SkipWs();
    const char c = Peek();
    if (c == '"') {
      cell->is_number = false;
      return ParseString(&cell->text) || Fail(error, "bad string cell");
    }
    // Number (Table::ToJson never emits true/false/null/objects in cells).
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return Fail(error, "expected string or number cell");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    cell->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      return Fail(error, "bad number '" + token + "'");
    cell->is_number = true;
    cell->text = token;
    return true;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (Peek() != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            // Table::JsonQuote only emits \u00XX for control bytes.
            if (pos_ + 4 > text_.size()) return false;
            c = static_cast<char>(
                std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char Peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Expect(char c) {
    SkipWs();
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool Fail(std::string* error, const std::string& what) {
    *error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool LoadBenchFile(const std::string& path, BenchFile* out) {
  std::ifstream f(path);
  if (!f) {
    fprintf(stderr, "benchdiff: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  std::string error;
  if (!Parser(text).Parse(out, &error)) {
    fprintf(stderr, "benchdiff: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Diff.

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// +1 = higher is better, -1 = lower is better, 0 = informational.
int Direction(const std::string& column) {
  const std::string c = Lower(column);
  if (Contains(c, "qps") || Contains(c, "throughput") || Contains(c, "rate") ||
      Contains(c, "power") || Contains(c, "hit") || Contains(c, "/s"))
    return +1;
  if (EndsWith(c, "us") || EndsWith(c, "_s") || EndsWith(c, "ms") ||
      Contains(c, "lat") || Contains(c, "err") || Contains(c, "drop") ||
      Contains(c, "miss") || Contains(c, "dev"))
    return -1;
  return 0;
}

/// Row identities for a whole file: each row's string-valued cells, in
/// column order ("Mode=direct"). Numeric cells are measurements; string
/// cells are the config axis. Rows that share the same string cells (or
/// have none at all — an all-numeric table like the ingest bench) are
/// disambiguated by occurrence order, so they match positionally instead
/// of all collapsing onto the first row.
std::vector<std::string> RowIdentities(const BenchFile& file) {
  std::vector<std::string> ids;
  std::map<std::string, size_t> seen;
  for (const auto& row : file.rows) {
    std::string id;
    for (const auto& [key, cell] : row) {
      if (cell.is_number) continue;
      if (!id.empty()) id += ", ";
      id += key + "=" + cell.text;
    }
    if (id.empty()) id = "<row>";
    const size_t n = seen[id]++;
    if (n > 0) id += " #" + std::to_string(n);
    ids.push_back(std::move(id));
  }
  return ids;
}

const Cell* FindCell(const std::vector<std::pair<std::string, Cell>>& row,
                     const std::string& key) {
  for (const auto& [k, cell] : row)
    if (k == key) return &cell;
  return nullptr;
}

struct Options {
  std::string baseline_path;
  std::string current_path;
  double tolerance = 0.25;
  double slack = 0.0;
  std::vector<std::string> metrics;  // empty = every directional column
};

bool GatedMetric(const Options& opt, const std::string& column) {
  if (opt.metrics.empty()) return true;
  for (const std::string& m : opt.metrics)
    if (m == column) return true;
  return false;
}

int RunDiff(const Options& opt) {
  BenchFile base, cur;
  if (!LoadBenchFile(opt.baseline_path, &base)) return 2;
  if (!LoadBenchFile(opt.current_path, &cur)) return 2;
  if (base.title != cur.title)
    printf("note: titles differ (config change?)\n  baseline: %s\n  current:  %s\n",
           base.title.c_str(), cur.title.c_str());

  // Index current rows by identity; duplicates take the first occurrence.
  std::map<std::string, const std::vector<std::pair<std::string, Cell>>*> by_id;
  const std::vector<std::string> cur_ids = RowIdentities(cur);
  for (size_t i = 0; i < cur.rows.size(); ++i)
    by_id.emplace(cur_ids[i], &cur.rows[i]);

  const std::vector<std::string> base_ids = RowIdentities(base);
  size_t regressions = 0, compared = 0, improved = 0;
  for (size_t i = 0; i < base.rows.size(); ++i) {
    const auto& row = base.rows[i];
    const std::string& id = base_ids[i];
    const auto it = by_id.find(id);
    if (it == by_id.end()) {
      printf("FAIL  [%s] missing from current output\n", id.c_str());
      ++regressions;
      continue;
    }
    for (const auto& [key, cell] : row) {
      if (!cell.is_number || !GatedMetric(opt, key)) continue;
      const int dir = Direction(key);
      if (dir == 0) continue;
      const Cell* other = FindCell(*it->second, key);
      if (other == nullptr || !other->is_number) continue;
      ++compared;
      const double b = cell.number, c = other->number;
      const double allowance = std::fabs(b) * opt.tolerance + opt.slack;
      const bool worse = dir > 0 ? c < b - allowance : c > b + allowance;
      const bool better = dir > 0 ? c > b + allowance : c < b - allowance;
      if (worse) {
        printf("FAIL  [%s] %s: %.6g -> %.6g (%s, tolerance %.0f%%%s)\n",
               id.c_str(), key.c_str(), b, c,
               dir > 0 ? "higher is better" : "lower is better",
               opt.tolerance * 100.0,
               opt.slack > 0 ? ", plus slack" : "");
        ++regressions;
      } else if (better) {
        ++improved;
      }
    }
  }
  printf("benchdiff: %zu comparison(s), %zu regression(s), %zu improvement(s)\n",
         compared, regressions, improved);
  return regressions == 0 ? 0 : 1;
}

[[noreturn]] void Usage() {
  fprintf(stderr,
          "usage: sapla_benchdiff <baseline.json> <current.json> "
          "[--tolerance=0.25] [--slack=0] [--metrics=QPS,P99us]\n");
  exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) Usage();
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "tolerance") {
      opt.tolerance = std::strtod(value.c_str(), nullptr);
    } else if (key == "slack") {
      opt.slack = std::strtod(value.c_str(), nullptr);
    } else if (key == "metrics") {
      size_t start = 0;
      while (start <= value.size()) {
        const size_t comma = value.find(',', start);
        opt.metrics.push_back(value.substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else {
      Usage();
    }
  }
  if (positional.size() != 2) Usage();
  opt.baseline_path = positional[0];
  opt.current_path = positional[1];
  return RunDiff(opt);
}
