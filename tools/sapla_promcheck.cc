// Validates a Prometheus text-exposition file (the format sapla_loadgen's
// --metrics-out and MetricsToPrometheus produce). Checks the things a
// scrape would choke on:
//
//   - line grammar: `# HELP <name> <text>`, `# TYPE <name> <type>`, or
//     `<name>[{labels}] <value>` with a valid metric name and finite or
//     +Inf/-Inf/NaN value
//   - every sample belongs to a family announced by a preceding # TYPE
//   - a family is announced at most once, and never re-announced with a
//     conflicting type (a gauge in one exporter and a counter in another
//     concatenated into the same scrape)
//   - no two samples share a name and label set (labels compare as a set —
//     {a="1",b="2"} duplicates {b="2",a="1"}); Prometheus drops the whole
//     scrape on such duplicates
//   - counter sample names end in _total
//   - histograms: have _bucket/_sum/_count series, bucket `le` labels parse
//     and strictly increase, cumulative bucket counts never decrease, the
//     last bucket is le="+Inf", and _count equals the +Inf bucket
//
// Usage: sapla_promcheck FILE   (exit 0 = valid, 1 = problems found,
//                                2 = could not read the file)
//
// This is a format checker for CI, not a full openmetrics parser: escaped
// label values and exemplars are out of scope because the exporter never
// emits them.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Checker {
  int errors = 0;
  int line_no = 0;

  void Fail(const std::string& why, const std::string& line) {
    fprintf(stderr, "line %d: %s\n  %s\n", line_no, why.c_str(), line.c_str());
    ++errors;
  }
};

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_' &&
      name[0] != ':')
    return false;
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      return false;
  }
  return true;
}

bool ParseValue(const std::string& text, double* out) {
  if (text == "+Inf") {
    *out = HUGE_VAL;
    return true;
  }
  if (text == "-Inf") {
    *out = -HUGE_VAL;
    return true;
  }
  if (text == "NaN") {
    *out = NAN;
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

// Canonical form of a label string: pairs sorted, whitespace trimmed, so
// two series that differ only in label order still collide. Our exporters
// never emit commas or escapes inside label values (documented out of
// scope above), so splitting on ',' is exact for everything checked here.
std::string NormalizeLabels(const std::string& labels) {
  std::vector<std::string> pairs;
  size_t start = 0;
  while (start <= labels.size()) {
    const size_t comma = labels.find(',', start);
    std::string pair = labels.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    while (!pair.empty() && pair.front() == ' ') pair.erase(pair.begin());
    while (!pair.empty() && pair.back() == ' ') pair.pop_back();
    if (!pair.empty()) pairs.push_back(std::move(pair));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  std::sort(pairs.begin(), pairs.end());
  std::string out;
  for (const std::string& pair : pairs) {
    if (!out.empty()) out += ',';
    out += pair;
  }
  return out;
}

// Strips a histogram-series suffix to recover the family name.
std::string FamilyOf(const std::string& sample_name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const size_t n = std::strlen(suffix);
    if (sample_name.size() > n &&
        sample_name.compare(sample_name.size() - n, n, suffix) == 0)
      return sample_name.substr(0, sample_name.size() - n);
  }
  return sample_name;
}

struct HistogramSeen {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative count)
  bool has_sum = false;
  bool has_count = false;
  double count = 0.0;
  int first_line = 0;
};

int Check(std::istream& in) {
  Checker c;
  std::map<std::string, std::string> types;  // family -> counter/gauge/...
  std::map<std::string, HistogramSeen> histograms;
  std::set<std::string> seen_series;  // "name{normalized labels}"
  std::string line;
  while (std::getline(in, line)) {
    ++c.line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      std::istringstream ss(line);
      std::string hash, kind, name;
      ss >> hash >> kind >> name;
      if (kind != "HELP" && kind != "TYPE") {
        c.Fail("comment is neither # HELP nor # TYPE", line);
        continue;
      }
      if (!ValidMetricName(name)) {
        c.Fail("invalid metric name in comment", line);
        continue;
      }
      if (kind == "TYPE") {
        std::string type;
        ss >> type;
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          c.Fail("unknown metric type \"" + type + "\"", line);
          continue;
        }
        const auto existing = types.find(name);
        if (existing != types.end()) {
          c.Fail(existing->second != type
                     ? "family re-announced with conflicting type (was " +
                           existing->second + ", now " + type + ")"
                     : "duplicate # TYPE for family",
                 line);
        }
        types[name] = type;
      }
      continue;
    }

    // Sample line: name[{labels}] value
    const size_t brace = line.find('{');
    const size_t name_end = brace != std::string::npos ? brace : line.find(' ');
    if (name_end == std::string::npos) {
      c.Fail("sample has no value", line);
      continue;
    }
    const std::string sample_name = line.substr(0, name_end);
    if (!ValidMetricName(sample_name)) {
      c.Fail("invalid sample name", line);
      continue;
    }
    std::string labels;
    size_t value_start;
    if (brace != std::string::npos) {
      const size_t close = line.find('}', brace);
      if (close == std::string::npos) {
        c.Fail("unterminated label set", line);
        continue;
      }
      labels = line.substr(brace + 1, close - brace - 1);
      value_start = close + 1;
    } else {
      value_start = name_end;
    }
    while (value_start < line.size() && line[value_start] == ' ')
      ++value_start;
    double value = 0.0;
    if (!ParseValue(line.substr(value_start), &value)) {
      c.Fail("unparseable sample value", line);
      continue;
    }

    if (!seen_series.insert(sample_name + "{" + NormalizeLabels(labels) + "}")
             .second)
      c.Fail("duplicate series (same name and label set)", line);

    const std::string family = FamilyOf(sample_name);
    const auto type_it =
        types.count(sample_name) ? types.find(sample_name) : types.find(family);
    if (type_it == types.end()) {
      c.Fail("sample precedes its # TYPE declaration", line);
      continue;
    }
    const std::string& type = type_it->second;

    if (type == "counter") {
      const size_t n = std::strlen("_total");
      if (sample_name.size() <= n ||
          sample_name.compare(sample_name.size() - n, n, "_total") != 0)
        c.Fail("counter sample does not end in _total", line);
      if (value < 0.0) c.Fail("negative counter value", line);
    } else if (type == "histogram") {
      HistogramSeen& h = histograms[type_it->first];
      if (h.first_line == 0) h.first_line = c.line_no;
      if (sample_name == type_it->first + "_bucket") {
        const std::string key = "le=\"";
        const size_t le = labels.find(key);
        if (le == std::string::npos) {
          c.Fail("histogram bucket without an le label", line);
          continue;
        }
        const size_t end = labels.find('"', le + key.size());
        double le_value = 0.0;
        if (end == std::string::npos ||
            !ParseValue(labels.substr(le + key.size(), end - le - key.size()),
                        &le_value)) {
          c.Fail("unparseable le label", line);
          continue;
        }
        h.buckets.emplace_back(le_value, value);
      } else if (sample_name == type_it->first + "_sum") {
        h.has_sum = true;
      } else if (sample_name == type_it->first + "_count") {
        h.has_count = true;
        h.count = value;
      } else {
        c.Fail("histogram sample is not _bucket/_sum/_count", line);
      }
    }
  }

  for (const auto& [name, h] : histograms) {
    c.line_no = h.first_line;
    const std::string tag = "histogram " + name;
    if (h.buckets.empty()) {
      c.Fail(tag + " has no buckets", name);
      continue;
    }
    if (!h.has_sum) c.Fail(tag + " is missing _sum", name);
    if (!h.has_count) c.Fail(tag + " is missing _count", name);
    for (size_t i = 1; i < h.buckets.size(); ++i) {
      if (!(h.buckets[i].first > h.buckets[i - 1].first))
        c.Fail(tag + " le labels do not strictly increase", name);
      if (h.buckets[i].second < h.buckets[i - 1].second)
        c.Fail(tag + " cumulative bucket counts decrease", name);
    }
    if (!std::isinf(h.buckets.back().first))
      c.Fail(tag + " does not end with an le=\"+Inf\" bucket", name);
    else if (h.has_count && h.buckets.back().second != h.count)
      c.Fail(tag + " _count disagrees with the +Inf bucket", name);
  }

  // An exposition with no families at all is a truncated or empty scrape,
  // not a clean one — CI must not treat it as a pass.
  if (types.empty()) {
    fprintf(stderr, "no metric families found (empty or truncated file?)\n");
    return 1;
  }
  if (c.errors > 0) {
    fprintf(stderr, "%d problem(s) found\n", c.errors);
    return 1;
  }
  printf("ok: %d families (%zu histograms) validated\n",
         static_cast<int>(types.size()), histograms.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    fprintf(stderr, "usage: %s FILE\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    fprintf(stderr, "could not read %s\n", argv[1]);
    return 2;
  }
  return Check(in);
}
